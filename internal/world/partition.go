package world

import "sort"

// PartitionKD splits the world into 2^depth regions with a kd-tree over the
// avatar positions, alternating split axes and cutting at the median — the
// load-balancing approach of Bezerra et al. (the paper's refs [1][12]) that
// MMOG clouds use to assign regions of the virtual environment to servers.
// Regions tile the bounds exactly; each carries its avatar count.
func PartitionKD(bounds Rect, avatars []Vec2, depth int) []Region {
	if depth < 0 {
		depth = 0
	}
	pts := make([]Vec2, len(avatars))
	copy(pts, avatars)
	var out []Region
	var split func(r Rect, pts []Vec2, d int, axis int)
	split = func(r Rect, pts []Vec2, d int, axis int) {
		if d == 0 {
			out = append(out, Region{Bounds: r, Avatars: len(pts)})
			return
		}
		if axis == 0 {
			sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		} else {
			sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
		}
		mid := len(pts) / 2
		var cut float64
		switch {
		case len(pts) == 0:
			// No load information: cut geometrically.
			if axis == 0 {
				cut = (r.Min.X + r.Max.X) / 2
			} else {
				cut = (r.Min.Y + r.Max.Y) / 2
			}
		case axis == 0:
			cut = pts[mid].X
		default:
			cut = pts[mid].Y
		}
		// Degenerate stacks (all avatars at one coordinate) fall back to a
		// geometric cut so regions keep positive area.
		lo, hi := r.Min, r.Max
		if axis == 0 {
			if cut <= lo.X || cut >= hi.X {
				cut = (lo.X + hi.X) / 2
			}
		} else {
			if cut <= lo.Y || cut >= hi.Y {
				cut = (lo.Y + hi.Y) / 2
			}
		}
		var left, right Rect
		if axis == 0 {
			left = Rect{Min: lo, Max: Vec2{cut, hi.Y}}
			right = Rect{Min: Vec2{cut, lo.Y}, Max: hi}
		} else {
			left = Rect{Min: lo, Max: Vec2{hi.X, cut}}
			right = Rect{Min: Vec2{lo.X, cut}, Max: hi}
		}
		var lp, rp []Vec2
		for _, p := range pts {
			if left.Contains(p) {
				lp = append(lp, p)
			} else {
				rp = append(rp, p)
			}
		}
		split(left, lp, d-1, 1-axis)
		split(right, rp, d-1, 1-axis)
	}
	split(bounds, pts, depth, 0)
	return out
}

// Region is one kd-tree leaf with its avatar load.
type Region struct {
	Bounds  Rect
	Avatars int
}

// AssignRegions distributes regions across n servers, balancing total
// avatar load greedily (largest region to the least-loaded server). It
// returns, for each region index, the server it is assigned to.
func AssignRegions(regions []Region, n int) []int {
	if n < 1 {
		n = 1
	}
	order := make([]int, len(regions))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return regions[order[a]].Avatars > regions[order[b]].Avatars
	})
	load := make([]int, n)
	assign := make([]int, len(regions))
	for _, ri := range order {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[ri] = best
		load[best] += regions[ri].Avatars
	}
	return assign
}

// LoadImbalance returns max/mean server load for an assignment (1.0 is
// perfect balance). Empty assignments return 1.
func LoadImbalance(regions []Region, assign []int, n int) float64 {
	if n < 1 || len(regions) == 0 {
		return 1
	}
	load := make([]int, n)
	total := 0
	for i, r := range regions {
		load[assign[i]] += r.Avatars
		total += r.Avatars
	}
	if total == 0 {
		return 1
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	mean := float64(total) / float64(n)
	return float64(max) / mean
}
