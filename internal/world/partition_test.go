package world

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/sim"
)

func clusteredAvatars(rng *sim.Rand, n int) []Vec2 {
	// Three hotspots plus a uniform background — the skewed avatar
	// distribution that motivates kd-tree balancing.
	out := make([]Vec2, n)
	hotspots := []Vec2{{1000, 1000}, {8000, 2000}, {5000, 9000}}
	for i := range out {
		if rng.Float64() < 0.8 {
			h := hotspots[rng.Intn(len(hotspots))]
			out[i] = Vec2{h.X + rng.NormFloat64()*300, h.Y + rng.NormFloat64()*300}
		} else {
			out[i] = Vec2{rng.Float64() * 10000, rng.Float64() * 10000}
		}
	}
	return out
}

func TestPartitionKDTilesExactly(t *testing.T) {
	rng := sim.NewRand(1)
	bounds := DefaultConfig().Bounds
	avatars := clusteredAvatars(rng, 500)
	regions := PartitionKD(bounds, avatars, 4)
	if len(regions) != 16 {
		t.Fatalf("depth 4 produced %d regions, want 16", len(regions))
	}
	// Every avatar falls in exactly one region, and counts agree.
	total := 0
	for _, r := range regions {
		total += r.Avatars
		if r.Bounds.Width() <= 0 || r.Bounds.Height() <= 0 {
			t.Fatalf("degenerate region %+v", r.Bounds)
		}
	}
	if total != len(avatars) {
		t.Fatalf("region counts sum to %d, want %d", total, len(avatars))
	}
	for _, p := range avatars {
		in := 0
		for _, r := range regions {
			if r.Bounds.Contains(bounds.Clamp(p)) {
				in++
			}
		}
		if in != 1 {
			t.Fatalf("avatar %+v in %d regions", p, in)
		}
	}
	// Area conservation.
	area := 0.0
	for _, r := range regions {
		area += r.Bounds.Width() * r.Bounds.Height()
	}
	want := bounds.Width() * bounds.Height()
	if math.Abs(area-want)/want > 1e-9 {
		t.Fatalf("regions cover area %v, want %v", area, want)
	}
}

func TestPartitionKDBalancesLoad(t *testing.T) {
	rng := sim.NewRand(2)
	bounds := DefaultConfig().Bounds
	avatars := clusteredAvatars(rng, 1024)
	kd := PartitionKD(bounds, avatars, 3) // 8 regions

	// Compare against a uniform 4x2 geometric grid.
	grid := []Region{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			r := Rect{
				Min: Vec2{bounds.Width() / 4 * float64(i), bounds.Height() / 2 * float64(j)},
				Max: Vec2{bounds.Width() / 4 * float64(i+1), bounds.Height() / 2 * float64(j+1)},
			}
			count := 0
			for _, p := range avatars {
				if r.Contains(p) {
					count++
				}
			}
			grid = append(grid, Region{Bounds: r, Avatars: count})
		}
	}
	imbalance := func(rs []Region) float64 {
		max, mean := 0, 0.0
		for _, r := range rs {
			if r.Avatars > max {
				max = r.Avatars
			}
			mean += float64(r.Avatars)
		}
		mean /= float64(len(rs))
		return float64(max) / mean
	}
	if imbalance(kd) >= imbalance(grid) {
		t.Fatalf("kd-tree imbalance %.2f not better than uniform grid %.2f",
			imbalance(kd), imbalance(grid))
	}
	// Median splits keep every region within a small factor of the mean.
	if imbalance(kd) > 1.5 {
		t.Fatalf("kd-tree imbalance %.2f too high", imbalance(kd))
	}
}

func TestPartitionKDDepthZero(t *testing.T) {
	bounds := DefaultConfig().Bounds
	regions := PartitionKD(bounds, []Vec2{{1, 1}}, 0)
	if len(regions) != 1 || regions[0].Bounds != bounds || regions[0].Avatars != 1 {
		t.Fatalf("depth 0 wrong: %+v", regions)
	}
}

func TestPartitionKDEmptyWorld(t *testing.T) {
	bounds := DefaultConfig().Bounds
	regions := PartitionKD(bounds, nil, 3)
	if len(regions) != 8 {
		t.Fatalf("%d regions, want 8", len(regions))
	}
	for _, r := range regions {
		if r.Avatars != 0 {
			t.Fatal("phantom avatars")
		}
		if r.Bounds.Width() <= 0 || r.Bounds.Height() <= 0 {
			t.Fatal("degenerate empty-world region")
		}
	}
}

func TestPartitionKDDegenerateStack(t *testing.T) {
	// All avatars at the same point: geometric fallback must keep
	// positive-area regions.
	bounds := DefaultConfig().Bounds
	pts := make([]Vec2, 64)
	for i := range pts {
		pts[i] = Vec2{5000, 5000}
	}
	regions := PartitionKD(bounds, pts, 4)
	total := 0
	for _, r := range regions {
		if r.Bounds.Width() <= 0 || r.Bounds.Height() <= 0 {
			t.Fatalf("degenerate region %+v", r.Bounds)
		}
		total += r.Avatars
	}
	if total != len(pts) {
		t.Fatalf("lost avatars: %d of %d", total, len(pts))
	}
}

func TestPartitionKDDuplicateCoordinate(t *testing.T) {
	// A majority of avatars share one coordinate with a few distinct
	// stragglers. The median lands on the duplicated value; a cut exactly
	// there would leave the left slab with zero avatars (Contains is
	// max-exclusive) while a naive count would still bill it for them. The
	// guarded cut advances past the duplicate run, so both children hold
	// avatars and every region keeps positive area.
	bounds := Rect{Min: Vec2{0, 0}, Max: Vec2{10, 10}}
	pts := []Vec2{{5, 5}, {5, 5}, {5, 5}, {5, 5}, {5, 5}, {5, 5}, {8, 2}, {9, 7}}
	regions := PartitionKD(bounds, pts, 1)
	if len(regions) != 2 {
		t.Fatalf("depth 1 produced %d regions, want 2", len(regions))
	}
	total := 0
	for _, r := range regions {
		if r.Bounds.Width() <= 0 || r.Bounds.Height() <= 0 {
			t.Fatalf("degenerate region %+v", r.Bounds)
		}
		if r.Avatars == len(pts) {
			t.Fatalf("one region swallowed all %d avatars: %+v", len(pts), r)
		}
		total += r.Avatars
	}
	if total != len(pts) {
		t.Fatalf("lost avatars: %d of %d", total, len(pts))
	}
	// Counts must agree with actual containment region by region.
	for _, r := range regions {
		in := 0
		for _, p := range pts {
			if r.Bounds.Contains(p) {
				in++
			}
		}
		if in != r.Avatars {
			t.Fatalf("region %+v bills %d avatars but contains %d", r.Bounds, r.Avatars, in)
		}
	}
}

func TestPartitionKDSnapAlignsCuts(t *testing.T) {
	rng := sim.NewRand(7)
	bounds := DefaultConfig().Bounds
	avatars := clusteredAvatars(rng, 400)
	const snapX, snapY = 125.0, 250.0
	regions := PartitionKDSnap(bounds, avatars, 3, snapX, snapY)
	if len(regions) != 8 {
		t.Fatalf("depth 3 produced %d regions, want 8", len(regions))
	}
	onGrid := func(v, snap float64) bool {
		q := v / snap
		return math.Abs(q-math.Round(q)) < 1e-9
	}
	total := 0
	for _, r := range regions {
		total += r.Avatars
		// Every interior edge must land on a cell boundary; the outer
		// bounds are the world edges and stay put.
		for _, x := range []float64{r.Bounds.Min.X, r.Bounds.Max.X} {
			if x != bounds.Min.X && x != bounds.Max.X && !onGrid(x, snapX) {
				t.Fatalf("vertical edge %v not on a %v cell boundary", x, snapX)
			}
		}
		for _, y := range []float64{r.Bounds.Min.Y, r.Bounds.Max.Y} {
			if y != bounds.Min.Y && y != bounds.Max.Y && !onGrid(y, snapY) {
				t.Fatalf("horizontal edge %v not on a %v cell boundary", y, snapY)
			}
		}
	}
	if total != len(avatars) {
		t.Fatalf("region counts sum to %d, want %d", total, len(avatars))
	}
}

func TestAssignRegionsBalances(t *testing.T) {
	rng := sim.NewRand(3)
	bounds := DefaultConfig().Bounds
	avatars := clusteredAvatars(rng, 2048)
	regions := PartitionKD(bounds, avatars, 5) // 32 regions
	assign := AssignRegions(regions, 5)
	if len(assign) != len(regions) {
		t.Fatal("assignment length mismatch")
	}
	for _, s := range assign {
		if s < 0 || s >= 5 {
			t.Fatalf("server index %d out of range", s)
		}
	}
	if im := LoadImbalance(regions, assign, 5); im > 1.15 {
		t.Fatalf("server load imbalance %.3f, want near 1", im)
	}
}

func TestLoadImbalanceEdgeCases(t *testing.T) {
	if LoadImbalance(nil, nil, 3) != 1 {
		t.Fatal("empty imbalance != 1")
	}
	regions := []Region{{Avatars: 0}, {Avatars: 0}}
	if LoadImbalance(regions, []int{0, 1}, 2) != 1 {
		t.Fatal("zero-load imbalance != 1")
	}
}

func TestRectContainsProperty(t *testing.T) {
	f := func(x, y float64) bool {
		r := Rect{Min: Vec2{0, 0}, Max: Vec2{100, 100}}
		p := Vec2{math.Mod(math.Abs(x), 200), math.Mod(math.Abs(y), 200)}
		in := r.Contains(p)
		wantIn := p.X >= 0 && p.X < 100 && p.Y >= 0 && p.Y < 100
		return in == wantIn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
