package world

import (
	"fmt"
	"sort"
)

// Replica is a supernode's copy of the virtual world, kept current by
// applying the cloud's deltas (paper §III-A: the supernode "updates its
// virtual world accordingly" and then renders per-player views).
type Replica struct {
	entities map[EntityID]Entity
	byOwner  map[int64]EntityID
	version  uint64
}

// NewReplica returns an empty replica at version zero.
func NewReplica() *Replica {
	return &Replica{
		entities: make(map[EntityID]Entity),
		byOwner:  make(map[int64]EntityID),
	}
}

// Version returns the replica's current world version.
func (r *Replica) Version() uint64 { return r.version }

// Len returns the number of entities in the replica.
func (r *Replica) Len() int { return len(r.entities) }

// Get returns a copy of an entity and whether it exists.
func (r *Replica) Get(id EntityID) (Entity, bool) {
	e, ok := r.entities[id]
	return e, ok
}

// ErrVersionGap is returned when a delta does not continue from the
// replica's version; the supernode must request a snapshot.
type ErrVersionGap struct {
	Replica, DeltaFrom uint64
}

func (e ErrVersionGap) Error() string {
	return fmt.Sprintf("world: replica at version %d cannot apply delta from %d", e.Replica, e.DeltaFrom)
}

// ApplyFiltered ingests an interest-filtered delta: like Apply, but it also
// evicts held entities that have left the subscribed view (they changed but
// were filtered out, so their absence from Updated despite a newer world
// version means they are out of interest).
func (r *Replica) ApplyFiltered(d Delta, view Rect) error {
	if err := r.Apply(d); err != nil {
		return err
	}
	for id, e := range r.entities {
		if !view.Contains(e.Pos) {
			if e.Kind == KindAvatar {
				delete(r.byOwner, e.Owner)
			}
			delete(r.entities, id)
		}
	}
	return nil
}

// Apply ingests one delta. Full deltas replace the state; incremental
// deltas must continue exactly from the replica's version.
func (r *Replica) Apply(d Delta) error {
	if d.Full {
		r.entities = make(map[EntityID]Entity, len(d.Updated))
		r.byOwner = make(map[int64]EntityID)
		for _, e := range d.Updated {
			r.entities[e.ID] = e
			if e.Kind == KindAvatar {
				r.byOwner[e.Owner] = e.ID
			}
		}
		r.version = d.ToVersion
		return nil
	}
	if d.FromVersion != r.version {
		return ErrVersionGap{Replica: r.version, DeltaFrom: d.FromVersion}
	}
	for _, e := range d.Updated {
		r.entities[e.ID] = e
		if e.Kind == KindAvatar {
			r.byOwner[e.Owner] = e.ID
		}
	}
	for _, id := range d.Removed {
		if e, ok := r.entities[id]; ok && e.Kind == KindAvatar {
			delete(r.byOwner, e.Owner)
		}
		delete(r.entities, id)
	}
	r.version = d.ToVersion
	return nil
}

// Avatar returns a player's avatar, if the replica holds it.
func (r *Replica) Avatar(player int64) (Entity, bool) {
	id, ok := r.byOwner[player]
	if !ok {
		return Entity{}, false
	}
	e, ok := r.entities[id]
	return e, ok
}

// Viewport is a player's viewing position and range: the supernode renders
// only what the player can see (per-player views are what make fog
// rendering cheap relative to full game-state computation).
type Viewport struct {
	Center Vec2
	Radius float64
}

// Visible returns the entities inside the viewport, ordered by ID for
// deterministic rendering.
func (r *Replica) Visible(v Viewport) []Entity {
	out := make([]Entity, 0, 16)
	rr := v.Radius * v.Radius
	for _, e := range r.entities {
		d := e.Pos.Sub(v.Center)
		if d.X*d.X+d.Y*d.Y <= rr {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RenderCost is a deterministic proxy for the work of rendering one frame
// of the view: a base cost plus a per-visible-entity cost, scaled by the
// pixel count of the target resolution. It grounds the paper's claim that
// "rendering game video is relatively less hardware demanding" — the cost
// depends on the view, not the whole world.
func RenderCost(visible int, width, height int) float64 {
	pixels := float64(width * height)
	return pixels * (1 + 0.02*float64(visible)) / 1e6
}
