package world

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/sim"
)

func TestSpawnAndLookup(t *testing.T) {
	w := New(DefaultConfig())
	av, err := w.SpawnAvatar(7, Vec2{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if av.Kind != KindAvatar || av.Owner != 7 || av.HP != 100 {
		t.Fatalf("avatar misconfigured: %+v", av)
	}
	if w.Avatar(7) != av || w.Get(av.ID) != av {
		t.Fatal("lookup broken")
	}
	if _, err := w.SpawnAvatar(7, Vec2{0, 0}); err == nil {
		t.Fatal("duplicate avatar accepted")
	}
	obj := w.SpawnObject(Vec2{50, 50})
	if obj.Kind != KindObject || obj.Owner != 0 {
		t.Fatalf("object misconfigured: %+v", obj)
	}
	if w.Len() != 2 {
		t.Fatalf("world has %d entities, want 2", w.Len())
	}
}

func TestSpawnClampsToBounds(t *testing.T) {
	w := New(DefaultConfig())
	av, _ := w.SpawnAvatar(1, Vec2{-50, 99999})
	if !w.Bounds().Contains(av.Pos) && av.Pos != (Vec2{0, 10000}) {
		t.Fatalf("avatar spawned out of bounds at %+v", av.Pos)
	}
}

func TestMoveAndStep(t *testing.T) {
	cfg := DefaultConfig()
	w := New(cfg)
	av, _ := w.SpawnAvatar(1, Vec2{100, 100})
	w.Apply([]Action{{Player: 1, Kind: ActionMove, Target: Vec2{220, 100}}})
	if av.Vel.Len() == 0 {
		t.Fatal("move did not set velocity")
	}
	w.Step(1.0) // MoveSpeed 120/s toward +X
	if math.Abs(av.Pos.X-220) > 1e-9 || av.Pos.Y != 100 {
		t.Fatalf("avatar at %+v, want (220,100)", av.Pos)
	}
	w.Apply([]Action{{Player: 1, Kind: ActionStop}})
	before := av.Pos
	w.Step(1.0)
	if av.Pos != before {
		t.Fatal("stopped avatar moved")
	}
}

func TestStepStopsAtBoundary(t *testing.T) {
	w := New(DefaultConfig())
	av, _ := w.SpawnAvatar(1, Vec2{10, 10})
	w.Apply([]Action{{Player: 1, Kind: ActionMove, Target: Vec2{-1000, 10}}})
	for i := 0; i < 10; i++ {
		w.Step(1.0)
	}
	if av.Pos.X != 0 {
		t.Fatalf("avatar at %+v, want clamped at X=0", av.Pos)
	}
	if av.Vel != (Vec2{}) {
		t.Fatal("velocity not zeroed at boundary")
	}
}

func TestStrike(t *testing.T) {
	cfg := DefaultConfig()
	w := New(cfg)
	attacker, _ := w.SpawnAvatar(1, Vec2{100, 100})
	victim, _ := w.SpawnAvatar(2, Vec2{120, 100}) // within reach 50
	far, _ := w.SpawnAvatar(3, Vec2{900, 900})

	w.Apply([]Action{{Player: 1, Kind: ActionStrike, Victim: victim.ID}})
	if victim.HP != cfg.MaxHP-cfg.StrikeDmg {
		t.Fatalf("victim HP %d, want %d", victim.HP, cfg.MaxHP-cfg.StrikeDmg)
	}
	// Out of reach: no damage.
	w.Apply([]Action{{Player: 1, Kind: ActionStrike, Victim: far.ID}})
	if far.HP != cfg.MaxHP {
		t.Fatal("out-of-reach strike landed")
	}
	// Self-strike ignored.
	w.Apply([]Action{{Player: 1, Kind: ActionStrike, Victim: attacker.ID}})
	if attacker.HP != cfg.MaxHP {
		t.Fatal("self strike landed")
	}
}

func TestStrikeToDeathRemovesEntity(t *testing.T) {
	cfg := DefaultConfig()
	w := New(cfg)
	w.SpawnAvatar(1, Vec2{100, 100})
	victim, _ := w.SpawnAvatar(2, Vec2{110, 100})
	for i := 0; i < int(cfg.MaxHP/cfg.StrikeDmg); i++ {
		w.Apply([]Action{{Player: 1, Kind: ActionStrike, Victim: victim.ID}})
	}
	if w.Get(victim.ID) != nil {
		t.Fatal("dead avatar still in world")
	}
	if w.Avatar(2) != nil {
		t.Fatal("dead avatar still owned")
	}
	// The player can respawn.
	if _, err := w.SpawnAvatar(2, Vec2{200, 200}); err != nil {
		t.Fatalf("respawn failed: %v", err)
	}
}

func TestUnknownPlayerActionsIgnored(t *testing.T) {
	w := New(DefaultConfig())
	w.Apply([]Action{{Player: 99, Kind: ActionMove, Target: Vec2{1, 1}}})
	if w.Version() == 0 {
		t.Fatal("apply should still tick the version")
	}
}

// TestReplicaConvergence is the core delta property: applying every delta
// in order leaves the replica identical to the world, whatever happened.
func TestReplicaConvergence(t *testing.T) {
	rng := sim.NewRand(1)
	cfg := DefaultConfig()
	w := New(cfg)
	r := NewReplica()
	if err := r.Apply(w.Snapshot()); err != nil {
		t.Fatal(err)
	}

	players := []int64{1, 2, 3, 4, 5}
	for _, p := range players {
		w.SpawnAvatar(p, Vec2{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	for i := 0; i < 500; i++ {
		switch rng.Intn(5) {
		case 0:
			p := players[rng.Intn(len(players))]
			w.Apply([]Action{{Player: p, Kind: ActionMove,
				Target: Vec2{rng.Float64() * 1000, rng.Float64() * 1000}}})
		case 1:
			w.Step(0.1)
		case 2:
			p := players[rng.Intn(len(players))]
			if av := w.Avatar(p); av != nil {
				// Strike the nearest other entity.
				for _, q := range players {
					if v := w.Avatar(q); v != nil && v.ID != av.ID {
						w.Apply([]Action{{Player: p, Kind: ActionStrike, Victim: v.ID}})
						break
					}
				}
			}
		case 3:
			w.SpawnObject(Vec2{rng.Float64() * 1000, rng.Float64() * 1000})
		case 4:
			p := players[rng.Intn(len(players))]
			if w.Avatar(p) == nil {
				w.SpawnAvatar(p, Vec2{rng.Float64() * 500, rng.Float64() * 500})
			}
		}
		if rng.Intn(3) == 0 { // sync at random intervals
			if err := r.Apply(w.DeltaSince(r.Version())); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := r.Apply(w.DeltaSince(r.Version())); err != nil {
		t.Fatal(err)
	}

	if r.Len() != w.Len() {
		t.Fatalf("replica has %d entities, world has %d", r.Len(), w.Len())
	}
	if r.Version() != w.Version() {
		t.Fatalf("replica at %d, world at %d", r.Version(), w.Version())
	}
	for id, e := range w.entities {
		re, ok := r.Get(id)
		if !ok {
			t.Fatalf("entity %d missing from replica", id)
		}
		if re != *e {
			t.Fatalf("entity %d diverged: world %+v vs replica %+v", id, *e, re)
		}
	}
}

func TestReplicaVersionGap(t *testing.T) {
	w := New(DefaultConfig())
	r := NewReplica()
	r.Apply(w.Snapshot())
	w.SpawnAvatar(1, Vec2{1, 1})
	w.SpawnAvatar(2, Vec2{2, 2})
	d := w.DeltaSince(w.Version() - 1) // skips the first spawn
	if err := r.Apply(d); err == nil {
		t.Fatal("gap delta accepted")
	}
	// Recovery: apply a snapshot.
	if err := r.Apply(w.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatal("snapshot recovery incomplete")
	}
}

func TestCompactForcesSnapshot(t *testing.T) {
	w := New(DefaultConfig())
	w.SpawnAvatar(1, Vec2{1, 1})
	v1 := w.Version()
	w.SpawnAvatar(2, Vec2{2, 2})
	w.Compact(w.Version())
	if w.JournalLen() != 0 {
		t.Fatal("compact left journal entries")
	}
	d := w.DeltaSince(v1)
	if !d.Full {
		t.Fatal("delta for pre-compaction version should be a snapshot")
	}
	r := NewReplica()
	if err := r.Apply(d); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatal("snapshot incomplete")
	}
}

func TestDeltaWireSizeScalesWithChanges(t *testing.T) {
	w := New(DefaultConfig())
	for i := int64(1); i <= 50; i++ {
		w.SpawnAvatar(i, Vec2{float64(i), float64(i)})
	}
	v := w.Version()
	w.Apply([]Action{{Player: 1, Kind: ActionMove, Target: Vec2{9, 9}}})
	small := w.DeltaSince(v).WireSize()
	full := w.Snapshot().WireSize()
	if small >= full {
		t.Fatalf("one-change delta (%dB) not smaller than snapshot (%dB)", small, full)
	}
	if small <= 0 {
		t.Fatal("non-positive wire size")
	}
}

func TestVisibleMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRand(seed)
		w := New(DefaultConfig())
		for i := int64(1); i <= 40; i++ {
			w.SpawnAvatar(i, Vec2{rng.Float64() * 2000, rng.Float64() * 2000})
		}
		r := NewReplica()
		if err := r.Apply(w.Snapshot()); err != nil {
			return false
		}
		vp := Viewport{Center: Vec2{rng.Float64() * 2000, rng.Float64() * 2000}, Radius: 300}
		got := r.Visible(vp)
		want := 0
		for _, e := range w.entities {
			if e.Pos.Sub(vp.Center).Len() <= vp.Radius {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].ID >= got[i].ID {
				return false // deterministic order violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderCostScales(t *testing.T) {
	small := RenderCost(5, 288, 216)
	bigView := RenderCost(50, 288, 216)
	hiRes := RenderCost(5, 1280, 720)
	if bigView <= small || hiRes <= small {
		t.Fatal("render cost not increasing in visible entities / resolution")
	}
}

// TestInterestFilteredDelta: filtered deltas carry only in-view changes and
// a filtered replica converges for the subscribed region.
func TestInterestFilteredDelta(t *testing.T) {
	rng := sim.NewRand(4)
	w := New(DefaultConfig())
	view := Rect{Min: Vec2{0, 0}, Max: Vec2{3000, 3000}}
	for i := int64(1); i <= 60; i++ {
		w.SpawnAvatar(i, Vec2{rng.Float64() * 10000, rng.Float64() * 10000})
	}
	r := NewReplica()
	if err := r.ApplyFiltered(w.DeltaSinceWithin(0, view), view); err != nil {
		t.Fatal(err)
	}
	// The filtered snapshot is a strict subset of the full world.
	if r.Len() >= w.Len() {
		t.Fatalf("filtered replica has %d entities, world %d", r.Len(), w.Len())
	}
	for i := 0; i < 200; i++ {
		p := int64(1 + rng.Intn(60))
		w.Apply([]Action{{Player: p, Kind: ActionMove,
			Target: Vec2{rng.Float64() * 10000, rng.Float64() * 10000}}})
		w.Step(0.5)
		if err := r.ApplyFiltered(w.DeltaSinceWithin(r.Version(), view), view); err != nil {
			t.Fatal(err)
		}
	}
	// Every in-view world entity is present and exact; nothing out-of-view
	// lingers.
	for id, e := range w.entities {
		re, ok := r.Get(id)
		if view.Contains(e.Pos) {
			if !ok || re != *e {
				t.Fatalf("in-view entity %d missing or stale", id)
			}
		} else if ok {
			t.Fatalf("out-of-view entity %d lingers in filtered replica", id)
		}
	}
	// Filtered updates are smaller than full updates.
	w.Apply([]Action{{Player: 1, Kind: ActionStop}})
	v := w.Version() - 1
	if w.DeltaSinceWithin(v, view).WireSize() > w.DeltaSince(v).WireSize() {
		t.Fatal("filtered delta larger than full delta")
	}
}

func TestReplicaAvatarIndex(t *testing.T) {
	w := New(DefaultConfig())
	r := NewReplica()
	r.Apply(w.Snapshot())
	w.SpawnAvatar(9, Vec2{100, 100})
	w.SpawnObject(Vec2{200, 200})
	r.Apply(w.DeltaSince(r.Version()))
	av, ok := r.Avatar(9)
	if !ok || av.Owner != 9 || av.Kind != KindAvatar {
		t.Fatalf("avatar lookup failed: %+v %v", av, ok)
	}
	if _, ok := r.Avatar(10); ok {
		t.Fatal("phantom avatar")
	}
	// Removal clears the index.
	id := av.ID
	w.Remove(id)
	r.Apply(w.DeltaSince(r.Version()))
	if _, ok := r.Avatar(9); ok {
		t.Fatal("avatar index survived removal")
	}
	// Full snapshot rebuilds the index.
	w.SpawnAvatar(9, Vec2{1, 1})
	r2 := NewReplica()
	r2.Apply(w.Snapshot())
	if _, ok := r2.Avatar(9); !ok {
		t.Fatal("snapshot did not rebuild avatar index")
	}
}
