// Package world implements the MMOG game-state substrate CloudFog's cloud
// runs (paper §III-A): the cloud "collects action information from all
// involved players ... and performs the computation of the new game state
// of the virtual world (including the new shape and position of objects and
// states of avatars)", then sends update information to supernodes, which
// update their replicas of the virtual world and render per-player views.
//
// The package provides the authoritative World (entity store + action
// application + deterministic tick), versioned Deltas (the paper's "update
// information"), the supernode-side Replica that applies them, per-player
// visibility queries for rendering, and the kd-tree region partitioning
// that MMOG clouds use to split the virtual environment across servers
// (Bezerra et al., the paper's refs [1] and [12]).
package world

import (
	"fmt"
	"math"
)

// Vec2 is a position or velocity in game-world coordinates.
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Len returns the Euclidean norm.
func (v Vec2) Len() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y) }

// Rect is an axis-aligned region of the virtual world.
type Rect struct {
	Min, Max Vec2
}

// Contains reports whether p lies in the rectangle (inclusive min,
// exclusive max, so adjacent regions do not overlap).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Clamp returns p moved inside the rectangle.
func (r Rect) Clamp(p Vec2) Vec2 {
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	return Vec2{clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y)}
}

// Width and Height of the rectangle.
func (r Rect) Width() float64  { return r.Max.X - r.Min.X }
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// EntityID identifies a world entity.
type EntityID int64

// Kind classifies entities.
type Kind uint8

const (
	// KindAvatar is a player-controlled character.
	KindAvatar Kind = iota
	// KindObject is a world object (loot, obstacle, projectile target).
	KindObject
)

// Entity is one object or avatar of the virtual world.
type Entity struct {
	ID    EntityID
	Kind  Kind
	Owner int64 // player ID for avatars, 0 otherwise
	Pos   Vec2
	Vel   Vec2
	HP    int32
	// Version is the world tick at which the entity last changed.
	Version uint64
}

// ActionKind classifies player inputs.
type ActionKind uint8

const (
	// ActionMove sets the avatar's velocity toward a target point.
	ActionMove ActionKind = iota
	// ActionStop zeroes the avatar's velocity.
	ActionStop
	// ActionStrike deals damage to a target entity within reach.
	ActionStrike
)

// Action is one player input, applied by the cloud at the next tick.
type Action struct {
	Player int64
	Kind   ActionKind
	Target Vec2     // ActionMove destination
	Victim EntityID // ActionStrike target
}

// Config holds world-simulation constants.
type Config struct {
	Bounds      Rect
	MoveSpeed   float64 // units per second for avatars
	StrikeReach float64 // maximum distance for a strike to land
	StrikeDmg   int32
	MaxHP       int32
}

// DefaultConfig returns a playable parameterization on a 10,000² world.
func DefaultConfig() Config {
	return Config{
		Bounds:      Rect{Min: Vec2{0, 0}, Max: Vec2{10_000, 10_000}},
		MoveSpeed:   120,
		StrikeReach: 50,
		StrikeDmg:   10,
		MaxHP:       100,
	}
}

// World is the authoritative game state, owned by the cloud.
type World struct {
	cfg      Config
	entities map[EntityID]*Entity
	byOwner  map[int64]EntityID
	version  uint64
	nextID   EntityID

	// journal records which entities changed (or were removed) at which
	// version, so DeltaSince is proportional to the change volume, not
	// the world size. Compact bounds its growth; compacted is the highest
	// version whose changes have been dropped — replicas older than it
	// must take a snapshot.
	journal   []journalEntry
	compacted uint64
}

type journalEntry struct {
	version uint64
	id      EntityID
	removed bool
}

// New returns an empty world.
func New(cfg Config) *World {
	return &World{
		cfg:      cfg,
		entities: make(map[EntityID]*Entity),
		byOwner:  make(map[int64]EntityID),
		nextID:   1,
	}
}

// Version returns the current world version (tick counter).
func (w *World) Version() uint64 { return w.version }

// Len returns the number of live entities.
func (w *World) Len() int { return len(w.entities) }

// Bounds returns the world rectangle.
func (w *World) Bounds() Rect { return w.cfg.Bounds }

// SpawnAvatar creates an avatar for a player at the given position and
// returns its entity. Spawning a second avatar for the same player is an
// error.
func (w *World) SpawnAvatar(player int64, pos Vec2) (*Entity, error) {
	if _, dup := w.byOwner[player]; dup {
		return nil, fmt.Errorf("world: player %d already has an avatar", player)
	}
	w.version++
	e := &Entity{
		ID:      w.nextID,
		Kind:    KindAvatar,
		Owner:   player,
		Pos:     w.cfg.Bounds.Clamp(pos),
		HP:      w.cfg.MaxHP,
		Version: w.version,
	}
	w.nextID++
	w.entities[e.ID] = e
	w.byOwner[player] = e.ID
	w.log(e.ID, false)
	return e, nil
}

// SpawnObject creates a world object.
func (w *World) SpawnObject(pos Vec2) *Entity {
	w.version++
	e := &Entity{
		ID:      w.nextID,
		Kind:    KindObject,
		Pos:     w.cfg.Bounds.Clamp(pos),
		HP:      w.cfg.MaxHP,
		Version: w.version,
	}
	w.nextID++
	w.entities[e.ID] = e
	w.log(e.ID, false)
	return e
}

// Remove deletes an entity (player logout, object destroyed).
func (w *World) Remove(id EntityID) {
	e, ok := w.entities[id]
	if !ok {
		return
	}
	w.version++
	delete(w.entities, id)
	if e.Kind == KindAvatar {
		delete(w.byOwner, e.Owner)
	}
	w.log(id, true)
}

// Avatar returns a player's avatar, or nil.
func (w *World) Avatar(player int64) *Entity {
	if id, ok := w.byOwner[player]; ok {
		return w.entities[id]
	}
	return nil
}

// Get returns an entity by ID, or nil.
func (w *World) Get(id EntityID) *Entity { return w.entities[id] }

func (w *World) log(id EntityID, removed bool) {
	w.journal = append(w.journal, journalEntry{version: w.version, id: id, removed: removed})
}

// Apply executes player actions against the current state, advancing the
// world version. Unknown players and out-of-reach strikes are ignored (a
// server must tolerate stale client input).
func (w *World) Apply(actions []Action) {
	if len(actions) == 0 {
		return
	}
	w.version++
	for _, a := range actions {
		av := w.Avatar(a.Player)
		if av == nil {
			continue
		}
		switch a.Kind {
		case ActionMove:
			dir := a.Target.Sub(av.Pos)
			if l := dir.Len(); l > 1e-9 {
				av.Vel = dir.Scale(w.cfg.MoveSpeed / l)
			} else {
				av.Vel = Vec2{}
			}
			av.Version = w.version
			w.log(av.ID, false)
		case ActionStop:
			av.Vel = Vec2{}
			av.Version = w.version
			w.log(av.ID, false)
		case ActionStrike:
			victim := w.entities[a.Victim]
			if victim == nil || victim.ID == av.ID {
				continue
			}
			if victim.Pos.Sub(av.Pos).Len() > w.cfg.StrikeReach {
				continue
			}
			victim.HP -= w.cfg.StrikeDmg
			victim.Version = w.version
			w.log(victim.ID, false)
			if victim.HP <= 0 {
				// Death: remove the entity within the same version.
				delete(w.entities, victim.ID)
				if victim.Kind == KindAvatar {
					delete(w.byOwner, victim.Owner)
				}
				w.log(victim.ID, true)
			}
		}
	}
}

// Step integrates avatar movement over dt seconds, advancing the version.
// Avatars stop at the world boundary.
func (w *World) Step(dt float64) {
	if dt <= 0 {
		return
	}
	w.version++
	for _, e := range w.entities {
		if e.Vel == (Vec2{}) {
			continue
		}
		next := w.cfg.Bounds.Clamp(e.Pos.Add(e.Vel.Scale(dt)))
		if next == e.Pos {
			e.Vel = Vec2{}
		} else {
			e.Pos = next
		}
		e.Version = w.version
		w.log(e.ID, false)
	}
}

// Delta is the paper's "update information": the entities that changed
// since a replica's version, plus removals. Applying it to a replica at
// FromVersion yields the state at ToVersion.
type Delta struct {
	FromVersion uint64
	ToVersion   uint64
	// Full marks a snapshot delta (replica state is replaced).
	Full    bool
	Updated []Entity
	Removed []EntityID
}

// WireSize estimates the encoded size in bytes (the Λ grounding: what the
// cloud actually ships to a supernode per update).
func (d Delta) WireSize() int {
	const header = 8 + 8 + 1 + 4 + 4
	const perEntity = 8 + 1 + 8 + 8*4 + 4 + 8
	return header + len(d.Updated)*perEntity + len(d.Removed)*8
}

// DeltaSince returns the changes after version v. If v is older than the
// journal's horizon (after compaction) a full snapshot is returned.
func (w *World) DeltaSince(v uint64) Delta {
	if v > w.version {
		v = w.version
	}
	if v == 0 || v < w.compacted {
		return w.Snapshot()
	}
	changed := make(map[EntityID]bool)
	removed := make(map[EntityID]bool)
	for _, je := range w.journal {
		if je.version <= v {
			continue
		}
		if je.removed {
			removed[je.id] = true
			delete(changed, je.id)
		} else {
			changed[je.id] = true
			delete(removed, je.id)
		}
	}
	d := Delta{FromVersion: v, ToVersion: w.version}
	for id := range changed {
		if e, ok := w.entities[id]; ok {
			d.Updated = append(d.Updated, *e)
		}
	}
	for id := range removed {
		if _, alive := w.entities[id]; !alive {
			d.Removed = append(d.Removed, id)
		}
	}
	return d
}

// DeltaSinceWithin is DeltaSince with interest filtering: only changed
// entities inside the view rectangle are included (removals are always
// included — they are cheap and the replica may hold the entity). This is
// what keeps the cloud→supernode update bandwidth Λ small: a supernode only
// needs the part of the virtual world its players can see.
//
// A filtered replica is complete only for the subscribed view; entities
// that move into the view after last sync appear because any position
// change marks the entity changed.
func (w *World) DeltaSinceWithin(v uint64, view Rect) Delta {
	d := w.DeltaSince(v)
	if d.Full {
		filtered := d.Updated[:0]
		for _, e := range d.Updated {
			if view.Contains(e.Pos) {
				filtered = append(filtered, e)
			}
		}
		d.Updated = filtered
		return d
	}
	filtered := make([]Entity, 0, len(d.Updated))
	for _, e := range d.Updated {
		if view.Contains(e.Pos) {
			filtered = append(filtered, e)
		} else {
			// Leave event: the entity changed while out of the view, so
			// a subscriber that held it (from when it was visible) must
			// drop it. Subscribers that never held it ignore the removal.
			d.Removed = append(d.Removed, e.ID)
		}
	}
	d.Updated = filtered
	return d
}

// Snapshot returns a full-state delta.
func (w *World) Snapshot() Delta {
	d := Delta{FromVersion: 0, ToVersion: w.version, Full: true}
	d.Updated = make([]Entity, 0, len(w.entities))
	for _, e := range w.entities {
		d.Updated = append(d.Updated, *e)
	}
	return d
}

// Compact drops journal entries at or below version v (all replicas have
// caught up past v). Replicas older than v will receive snapshots.
func (w *World) Compact(v uint64) {
	if v > w.version {
		v = w.version
	}
	if v > w.compacted {
		w.compacted = v
	}
	i := 0
	for i < len(w.journal) && w.journal[i].version <= v {
		i++
	}
	w.journal = append(w.journal[:0], w.journal[i:]...)
}

// JournalLen reports the change-journal length (for tests and monitoring).
func (w *World) JournalLen() int { return len(w.journal) }
