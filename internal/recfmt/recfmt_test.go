package recfmt

import (
	"math"
	"strings"
	"testing"
)

// TestPrimitiveRoundTrip pins the append/read pairing for every primitive,
// including the exactness of the float encoding (bit patterns, not
// formatted values — NaN payloads and signed zero must survive).
func TestPrimitiveRoundTrip(t *testing.T) {
	floats := []float64{0, math.Copysign(0, -1), 1.5, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), math.NaN()}
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, math.MaxUint64)
	buf = AppendVarint(buf, -1)
	buf = AppendVarint(buf, math.MinInt64)
	buf = AppendString(buf, "")
	buf = AppendString(buf, "supernode")
	buf = AppendBytes(buf, []byte{0xff, 0x00})
	for _, f := range floats {
		buf = AppendFloat64(buf, f)
	}

	r := NewReader(buf)
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint: got %d, want 0", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint: got %d, want max", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("varint: got %d, want -1", got)
	}
	if got := r.Varint(); got != math.MinInt64 {
		t.Errorf("varint: got %d, want min", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("string: got %q, want empty", got)
	}
	if got := r.String(); got != "supernode" {
		t.Errorf("string: got %q", got)
	}
	if got := r.Bytes(); len(got) != 2 || got[0] != 0xff || got[1] != 0x00 {
		t.Errorf("bytes: got %v", got)
	}
	for _, want := range floats {
		if got := r.Float64(); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("float64: got %x bits, want %x", math.Float64bits(got), math.Float64bits(want))
		}
	}
	if err := r.Expect(); err != nil {
		t.Fatalf("Expect after full read: %v", err)
	}
}

// TestReaderErrorAccumulation pins the chained-read contract: the first
// failure sticks, later reads are no-ops, and Expect reports it.
func TestReaderErrorAccumulation(t *testing.T) {
	r := NewReader(AppendUvarint(nil, 7))
	if got := r.Uvarint(); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
	r.Float64() // 0 bytes left: fails
	r.Uvarint() // must not panic or clear the error
	if err := r.Expect(); err == nil || !strings.Contains(err.Error(), "float64") {
		t.Fatalf("Expect = %v, want the first (float64) failure", err)
	}

	r = NewReader(append(AppendString(nil, "ok"), 0x01))
	_ = r.String()
	if err := r.Expect(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("Expect with trailing byte = %v, want trailing-bytes error", err)
	}
}

// TestHeaderVersionGate pins the header contract: wrong magic, truncated
// version, version 0, and future versions are all rejected.
func TestHeaderVersionGate(t *testing.T) {
	hdr := AppendHeader(nil, "TEST", 2)
	v, rest, err := CheckHeader(hdr, "TEST", 3)
	if err != nil || v != 2 || len(rest) != 0 {
		t.Fatalf("CheckHeader = (%d, %v, %v)", v, rest, err)
	}
	if _, _, err := CheckHeader(hdr, "ELSE", 3); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, _, err := CheckHeader(hdr[:3], "TEST", 3); err == nil {
		t.Error("truncated magic accepted")
	}
	if _, _, err := CheckHeader(hdr[:4], "TEST", 3); err == nil {
		t.Error("missing version accepted")
	}
	if _, _, err := CheckHeader(AppendHeader(nil, "TEST", 9), "TEST", 3); err == nil {
		t.Error("future version accepted")
	}
	if _, _, err := CheckHeader(AppendHeader(nil, "TEST", 0), "TEST", 3); err == nil {
		t.Error("version 0 accepted")
	}
}

// TestChunkFraming pins chunk round-trips, the done sentinel, and CRC
// rejection of any single flipped payload bit.
func TestChunkFraming(t *testing.T) {
	var buf []byte
	buf = AppendChunk(buf, 1, []byte("alpha"))
	buf = AppendChunk(buf, 2, nil)

	typ, payload, rest, done, err := NextChunk(buf)
	if err != nil || done || typ != 1 || string(payload) != "alpha" {
		t.Fatalf("chunk 1 = (%d, %q, done=%v, %v)", typ, payload, done, err)
	}
	typ, payload, rest, done, err = NextChunk(rest)
	if err != nil || done || typ != 2 || len(payload) != 0 {
		t.Fatalf("chunk 2 = (%d, %q, done=%v, %v)", typ, payload, done, err)
	}
	if _, _, _, done, err = NextChunk(rest); !done || err != nil {
		t.Fatalf("end = (done=%v, %v), want clean done", done, err)
	}

	for i := range buf {
		corrupt := append([]byte(nil), buf...)
		corrupt[i] ^= 0x40
		_, _, rest, _, err := NextChunk(corrupt)
		if err == nil {
			_, _, _, _, err = NextChunk(rest)
		}
		// A flip in chunk 1's type byte can still frame as some other
		// valid-looking type, but the CRC must then catch the payload; a
		// flip anywhere else fails framing or CRC directly. Either way a
		// full scan of two chunks must not succeed silently unless the
		// flip landed in the type varint (payload+CRC still consistent).
		if err == nil && i != 0 && i != 11 {
			t.Errorf("bit flip at %d decoded cleanly", i)
		}
	}

	if _, _, _, _, err := NextChunk(buf[:len(buf)-1]); err == nil {
		// Truncation inside the last chunk's CRC must not pass; the first
		// chunk still decodes, so walk to the second.
		_, _, rest, _, _ := NextChunk(buf[:len(buf)-1])
		if _, _, _, _, err := NextChunk(rest); err == nil {
			t.Error("truncated final chunk decoded cleanly")
		}
	}
}
