// Package recfmt defines the binary convention every on-disk record the
// repo persists shares: a 4-byte magic, a uvarint format version, and
// varint-framed CRC-protected chunks, written with the same append-in-place
// style as internal/proto's wire encoders. Both the fault package's compiled
// schedules and the flight recorder's run captures are recfmt files, so one
// header check rejects stale or corrupt artifacts of either kind loudly
// instead of replaying garbage.
//
// Layout:
//
//	magic[4] | version uvarint | chunk*
//	chunk  = type uvarint | len uvarint | payload[len] | crc32c(payload) fixed32
//
// All integers are unsigned or zigzag varints; floats are IEEE-754 bits in
// little-endian fixed64. The per-chunk CRC is Castagnoli, covering the
// payload bytes only (type and length corruption surfaces as a framing
// error first).
package recfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// castagnoli is the CRC-32C table every chunk checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of the payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// AppendHeader appends the file header: the 4-byte magic and the format
// version. It panics if the magic is not exactly 4 bytes — magics are
// compile-time constants.
func AppendHeader(dst []byte, magic string, version uint64) []byte {
	if len(magic) != 4 {
		panic(fmt.Sprintf("recfmt: magic %q is not 4 bytes", magic))
	}
	dst = append(dst, magic...)
	return binary.AppendUvarint(dst, version)
}

// CheckHeader validates the magic and version of data and returns the
// version and the remaining bytes. Versions above maxVersion fail: a newer
// writer's file must not be half-read by an older reader.
func CheckHeader(data []byte, magic string, maxVersion uint64) (version uint64, rest []byte, err error) {
	if len(magic) != 4 {
		panic(fmt.Sprintf("recfmt: magic %q is not 4 bytes", magic))
	}
	if len(data) < 4 || string(data[:4]) != magic {
		return 0, nil, fmt.Errorf("recfmt: bad magic (want %q)", magic)
	}
	v, n := binary.Uvarint(data[4:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("recfmt: truncated version")
	}
	if v == 0 || v > maxVersion {
		return 0, nil, fmt.Errorf("recfmt: unsupported %s version %d (max %d)", magic, v, maxVersion)
	}
	return v, data[4+n:], nil
}

// AppendChunk appends one framed chunk: type, length, payload, CRC-32C.
func AppendChunk(dst []byte, typ uint64, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, Checksum(payload))
}

// NextChunk decodes the chunk at the head of data, verifying its CRC, and
// returns the chunk type, its payload (aliasing data), and the remaining
// bytes. An empty data slice returns typ 0 with done = true.
func NextChunk(data []byte) (typ uint64, payload, rest []byte, done bool, err error) {
	if len(data) == 0 {
		return 0, nil, nil, true, nil
	}
	typ, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, nil, false, fmt.Errorf("recfmt: truncated chunk type")
	}
	data = data[n:]
	ln, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, nil, false, fmt.Errorf("recfmt: truncated chunk length")
	}
	data = data[n:]
	if uint64(len(data)) < ln+4 {
		return 0, nil, nil, false, fmt.Errorf("recfmt: chunk %d truncated (%d payload bytes missing)", typ, ln+4-uint64(len(data)))
	}
	payload = data[:ln]
	sum := binary.LittleEndian.Uint32(data[ln : ln+4])
	if got := Checksum(payload); got != sum {
		return 0, nil, nil, false, fmt.Errorf("recfmt: chunk %d checksum mismatch (stored %08x, computed %08x)", typ, sum, got)
	}
	return typ, payload, data[ln+4:], false, nil
}

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends a zigzag-encoded signed varint.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// AppendFloat64 appends the IEEE-754 bits as fixed64 little-endian — an
// exact, canonical encoding (bit-identity comparisons depend on it).
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Reader decodes the primitives AppendX writes, accumulating the first
// error so call sites chain reads without per-call checks.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.data) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("recfmt: truncated %s at offset %d", what, r.off)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Float64 reads a fixed64 IEEE-754 value.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.fail("float64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Bytes reads a length-prefixed byte slice (aliasing the input).
func (r *Reader) Bytes() []byte {
	if r.err != nil {
		return nil
	}
	ln := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Len()) < ln {
		r.fail("bytes")
		return nil
	}
	out := r.data[r.off : r.off+int(ln)]
	r.off += int(ln)
	return out
}

// Expect fails the reader unless every input byte was consumed — decoders
// call it last so trailing garbage is an error, not silence.
func (r *Reader) Expect() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return fmt.Errorf("recfmt: %d trailing bytes", r.Len())
	}
	return nil
}
