// Package core implements the CloudFog system itself (paper §III-A): the
// fog-assisted cloud gaming infrastructure in which a cloud of datacenters
// computes the authoritative game state and sends small update messages to
// supernodes, and supernodes render, encode and stream per-player game
// videos to nearby players. The package provides the entities (datacenters,
// supernodes, players), the supernode assignment protocol (§III-A3), and
// the System interface shared with the Cloud and EdgeCloud baselines.
package core

import (
	"fmt"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/trace"
)

// Datacenter is one cloud datacenter. It computes game state for the whole
// system and, in the baseline systems, also streams game video directly.
// EdgeCloud's deployed servers are modeled as capacity-limited datacenters
// with the Edge flag set.
type Datacenter struct {
	ID     int64
	Pos    geo.Point
	Egress int64 // total video egress bandwidth, bits/second
	// Capacity limits the number of directly-streamed players
	// (0 = unlimited). EdgeCloud servers are capacity-limited; main
	// datacenters are not.
	Capacity int
	// Edge marks an EdgeCloud-style deployed server.
	Edge bool

	direct map[int64]*Player // players streamed directly from this DC
}

// NewDatacenter returns a datacenter with the given egress capacity.
func NewDatacenter(id int64, pos geo.Point, egress int64) *Datacenter {
	return &Datacenter{ID: id, Pos: pos, Egress: egress, direct: make(map[int64]*Player)}
}

// NewEdgeServer returns an EdgeCloud deployed server: provisioned like a
// datacenter but limited to `capacity` players.
func NewEdgeServer(id int64, pos geo.Point, egress int64, capacity int) *Datacenter {
	d := NewDatacenter(id, pos, egress)
	d.Capacity = capacity
	d.Edge = true
	return d
}

// Endpoint returns the datacenter's latency-trace endpoint.
func (d *Datacenter) Endpoint() trace.Endpoint {
	class := trace.ClassDatacenter
	if d.Edge {
		class = trace.ClassServer
	}
	return trace.Endpoint{ID: trace.NodeID(d.ID), Pos: d.Pos, Class: class}
}

// Available reports how many more players the node can stream directly;
// capacity 0 means unlimited.
func (d *Datacenter) Available() int {
	if d.Capacity == 0 {
		return int(^uint(0) >> 1)
	}
	return d.Capacity - len(d.direct)
}

// DirectPlayers returns how many players this datacenter streams directly.
func (d *Datacenter) DirectPlayers() int { return len(d.direct) }

// AddDirect registers a directly-streamed player.
func (d *Datacenter) AddDirect(p *Player) { d.direct[p.ID] = p }

// RemoveDirect detaches a directly-streamed player.
func (d *Datacenter) RemoveDirect(id int64) { delete(d.direct, id) }

// Share returns the egress bandwidth share (bits/second) available to one
// directly-streamed player at the datacenter's current load.
func (d *Datacenter) Share() int64 {
	n := len(d.direct)
	if n == 0 {
		n = 1
	}
	return d.Egress / int64(n)
}

// Supernode is one fog node: an idle machine contributed by an organization
// or player, pre-installed with the game client, that receives state
// updates from the cloud and renders/streams video for nearby players.
type Supernode struct {
	ID       int64
	Pos      geo.Point
	Capacity int   // C_j: max number of normal nodes supported
	Uplink   int64 // upload bandwidth, bits/second

	// DC is the datacenter this supernode receives updates from, chosen
	// as the minimum-latency datacenter when the supernode registers.
	DC *Datacenter
	// UpdateLatency is the one-way cloud→supernode latency on that path.
	UpdateLatency time.Duration

	players map[int64]*Player
}

// NewSupernode returns a supernode with the given capacity and uplink.
func NewSupernode(id int64, pos geo.Point, capacity int, uplink int64) *Supernode {
	if capacity < 1 {
		capacity = 1
	}
	return &Supernode{ID: id, Pos: pos, Capacity: capacity, Uplink: uplink,
		players: make(map[int64]*Player)}
}

// Endpoint returns the supernode's latency-trace endpoint. Supernodes are
// end hosts, but vetted for stable, well-provisioned connectivity.
func (s *Supernode) Endpoint() trace.Endpoint {
	return trace.Endpoint{ID: trace.NodeID(s.ID), Pos: s.Pos, Class: trace.ClassSupernode}
}

// Available returns the remaining player slots (C_j minus current load).
func (s *Supernode) Available() int { return s.Capacity - len(s.players) }

// Load returns the number of players currently supported.
func (s *Supernode) Load() int { return len(s.players) }

// Member returns the attached player with the given ID, or nil.
func (s *Supernode) Member(id int64) *Player { return s.players[id] }

// Players returns the IDs of the currently supported players.
func (s *Supernode) Players() []int64 {
	out := make([]int64, 0, len(s.players))
	for id := range s.players {
		out = append(out, id)
	}
	return out
}

// Share returns the uplink bandwidth share (bits/second) available to one
// supported player at the supernode's current load.
func (s *Supernode) Share() int64 {
	n := len(s.players)
	if n == 0 {
		n = 1
	}
	return s.Uplink / int64(n)
}

// Player is one game client. Thin clients cannot render; they send actions
// and play back a received video stream.
type Player struct {
	ID       int64
	Pos      geo.Point
	Game     game.Game
	Downlink int64 // bits/second
	Friends  []int64

	// SupernodeCapable marks players whose hardware could serve as a
	// supernode (10% of the population in the paper's evaluation).
	SupernodeCapable bool

	Online   bool
	Attached Attachment
	// Backups are fallback supernodes recorded at assignment time
	// (paper §III-A3), nearest-first.
	Backups []*Supernode

	// attachSeq orders supernode attachments fog-wide; overload migration
	// evicts the highest stamp (newest attachment) first.
	attachSeq int64
}

// Endpoint returns the player's latency-trace endpoint.
func (p *Player) Endpoint() trace.Endpoint {
	return trace.Endpoint{ID: trace.NodeID(p.ID), Pos: p.Pos, Class: trace.ClassNode}
}

// AttachKind says what serves a player's video stream.
type AttachKind int

const (
	// AttachNone means the player is not being served.
	AttachNone AttachKind = iota
	// AttachCloud means a datacenter streams directly to the player.
	AttachCloud
	// AttachSupernode means a fog supernode streams to the player.
	AttachSupernode
	// AttachEdge means an EdgeCloud server streams to the player
	// (used by the baseline package).
	AttachEdge
)

// String names the attachment kind.
func (k AttachKind) String() string {
	switch k {
	case AttachNone:
		return "none"
	case AttachCloud:
		return "cloud"
	case AttachSupernode:
		return "supernode"
	case AttachEdge:
		return "edge"
	default:
		return fmt.Sprintf("AttachKind(%d)", int(k))
	}
}

// Attachment describes how a player is served and the latencies of the
// serving path.
type Attachment struct {
	Kind AttachKind
	DC   *Datacenter // serving or state-computing datacenter
	SN   *Supernode  // serving supernode, if Kind == AttachSupernode

	// StreamLatency is the one-way propagation latency of the video hop
	// (serving node → player).
	StreamLatency time.Duration
	// UpdateLatency is the one-way cloud → serving-node latency (zero
	// when the cloud itself streams).
	UpdateLatency time.Duration
}

// PathLatency returns the total one-way propagation latency of the serving
// path: cloud→serving node→player.
func (a Attachment) PathLatency() time.Duration { return a.UpdateLatency + a.StreamLatency }

// Served reports whether the attachment serves a stream.
func (a Attachment) Served() bool { return a.Kind != AttachNone }
