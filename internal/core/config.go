package core

import (
	"fmt"
	"time"

	"cloudfog/internal/geo"
	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/stream"
	"cloudfog/internal/trace"
)

// Config holds the infrastructure parameters of a CloudFog deployment.
type Config struct {
	// Latency supplies one-way latencies: the synthetic PlanetLab-like
	// model in simulation, or measured loopback-TCP latencies on the
	// testbed.
	Latency trace.Source
	// Region is the deployment area.
	Region geo.Region
	// Locator models the cloud's IP-geolocation accuracy for the
	// supernode shortlist step.
	Locator geo.Locator
	// Stream carries segment/packet sizing.
	Stream stream.Config

	// Candidates is how many geographically-closest supernodes the cloud
	// returns to a joining player for probing (paper: "its physically
	// close supernodes").
	Candidates int
	// LmaxFactor scales a game's network budget into the player's
	// supernode-delay threshold L_max: the video hop must leave room for
	// the cloud→supernode update hop, so L_max < budget.
	LmaxFactor float64
	// UplinkPerSlot is the supernode uplink bandwidth provisioned per
	// capacity slot, bits/second. A supernode with capacity C_j has
	// uplink C_j × UplinkPerSlot.
	UplinkPerSlot int64
	// DCEgress is each datacenter's video egress bandwidth, bits/second.
	DCEgress int64
	// UpdateBandwidth is Λ: the cloud→supernode update traffic per
	// active supernode, bits/second.
	UpdateBandwidth int64
	// StreamOverhead multiplies video bitrate into wire bandwidth
	// (packetization, retransmission).
	StreamOverhead float64
	// Exclude, when non-nil, removes supernodes from every assignment
	// shortlist (e.g. a trust blacklist of misbehaving supernodes).
	Exclude func(snID int64) bool
	// Obs, when non-nil, counts assignment-protocol outcomes (join kind,
	// failover repair kind, cooperative reassignments) and emits assign /
	// failover events. The protocol pays one nil-check per outcome when
	// disabled; counters never influence assignment decisions.
	Obs *obs.AssignStats

	// Overload, when non-nil, runs the supernode degradation ladder: the
	// fog feeds it slot occupancy on every attach/detach and honors its
	// admission, backup-duty, level-cap and migration verdicts. Nil keeps
	// the PR-4 binary capacity check bit-identical.
	Overload *health.Overload
	// Breaker, when non-nil, guards the direct-cloud fallback so a degraded
	// cloud is probed on the breaker's schedule instead of hammered by
	// every failover. Requires Now.
	Breaker *health.Breaker
	// Now supplies the control-plane clock consumed by Overload episode
	// timing and the Breaker probe schedule — the sim engine's Now, or a
	// wall-clock offset on a testbed.
	Now func() time.Duration
	// Health, when non-nil, counts admission-control rejections and
	// overload migrations (cloudfog_health_*).
	Health *obs.HealthStats
}

// DefaultConfig returns the configuration used by the paper-scale
// simulations. The latency model is seeded by the caller.
func DefaultConfig(seed int64) Config {
	return Config{
		Latency:         trace.DefaultModel(seed),
		Region:          geo.USRegion(),
		Locator:         geo.Locator{Region: geo.USRegion(), ErrorSigma: 30},
		Stream:          stream.DefaultConfig(),
		Candidates:      15,
		LmaxFactor:      0.8,
		UplinkPerSlot:   2_500_000, // 2.5 Mbps per supported player
		DCEgress:        400_000_000,
		UpdateBandwidth: 50_000, // Λ = 50 kbps per supernode
		StreamOverhead:  1.1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Candidates < 1:
		return fmt.Errorf("core: Candidates %d < 1", c.Candidates)
	case c.LmaxFactor <= 0 || c.LmaxFactor > 1:
		return fmt.Errorf("core: LmaxFactor %v outside (0,1]", c.LmaxFactor)
	case c.UplinkPerSlot <= 0:
		return fmt.Errorf("core: non-positive UplinkPerSlot %d", c.UplinkPerSlot)
	case c.DCEgress <= 0:
		return fmt.Errorf("core: non-positive DCEgress %d", c.DCEgress)
	case c.UpdateBandwidth < 0:
		return fmt.Errorf("core: negative UpdateBandwidth %d", c.UpdateBandwidth)
	case c.StreamOverhead < 1:
		return fmt.Errorf("core: StreamOverhead %v < 1", c.StreamOverhead)
	case c.Latency == nil:
		return fmt.Errorf("core: nil latency source")
	case c.Breaker != nil && c.Now == nil:
		return fmt.Errorf("core: Breaker set without Now (the probe schedule needs a clock)")
	}
	return c.Stream.Validate()
}

// Lmax returns the player's supernode-delay threshold L_max for a game with
// the given network budget (paper §III-A3: the node determines L_max from
// its game's genre).
func (c Config) Lmax(networkBudget time.Duration) time.Duration {
	return time.Duration(float64(networkBudget) * c.LmaxFactor)
}

// WireRate converts a video bitrate into consumed wire bandwidth.
func (c Config) WireRate(bitrate int64) int64 {
	return int64(float64(bitrate) * c.StreamOverhead)
}
