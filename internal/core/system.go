package core

import "time"

// System is the behavior shared by the three compared gaming systems:
// Cloud (current cloud gaming), EdgeCloud, and CloudFog. The experiment
// harness drives churn through Join/Leave and samples the two flow-level
// metrics every figure in the paper's evaluation aggregates.
type System interface {
	// Name identifies the system in experiment output.
	Name() string
	// Join serves a newly arrived player and returns its attachment.
	Join(p *Player) Attachment
	// Leave detaches a departing player.
	Leave(p *Player)
	// NetworkLatency returns the player's current flow-level response
	// network latency (propagation of the serving path plus one
	// segment's transmission at the current bandwidth share).
	NetworkLatency(p *Player) time.Duration
	// CloudBandwidth returns the cloud's current egress consumption in
	// bits/second, using each system's own accounting (EdgeCloud counts
	// only its main datacenters, as the paper's Figure 7 does).
	CloudBandwidth() int64
}

var _ System = (*Fog)(nil)
