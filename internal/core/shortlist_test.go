package core

import (
	"fmt"
	"sort"
	"testing"

	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

// shortlistReference is the pre-index shortlist kept as the oracle: a full
// scan over the geolocated supernode table plus a sort. Ties break on
// supernode ID, matching the spatial index's determinism contract.
func shortlistReference(f *Fog, x, y float64, k int) []*Supernode {
	type entry struct {
		sn *Supernode
		d  float64
	}
	entries := make([]entry, 0, len(f.snOrder))
	for _, sn := range f.snOrder {
		if sn.Available() <= 0 {
			continue
		}
		if f.cfg.Exclude != nil && f.cfg.Exclude(sn.ID) {
			continue
		}
		est := f.snEstPos[sn.ID]
		entries = append(entries, entry{sn, dist2(x, y, est.x, est.y)})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].d != entries[j].d {
			return entries[i].d < entries[j].d
		}
		return entries[i].sn.ID < entries[j].sn.ID
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	out := make([]*Supernode, len(entries))
	for i, e := range entries {
		out[i] = e.sn
	}
	return out
}

// buildRandomFog assembles a fog with S supernodes at clustered positions;
// a slice of duplicated positions forces exact distance ties.
func buildRandomFog(t testing.TB, cfg Config, s int, rng *sim.Rand) *Fog {
	t.Helper()
	placer := geo.DefaultUSPlacer()
	center := cfg.Region.Center()
	dcs := []*Datacenter{
		NewDatacenter(2_000_000, geo.Point{X: center.X - 800, Y: center.Y}, cfg.DCEgress),
		NewDatacenter(2_000_001, geo.Point{X: center.X + 800, Y: center.Y}, cfg.DCEgress),
	}
	sns := make([]*Supernode, s)
	for i := range sns {
		pos := placer.Place(rng)
		if i > 0 && rng.Float64() < 0.1 {
			pos = sns[rng.Intn(i)].Pos // coincident position → distance tie
		}
		capacity := 1 + rng.Intn(6)
		sns[i] = NewSupernode(1_000_000+int64(i), pos, capacity, int64(capacity)*cfg.UplinkPerSlot)
	}
	// Shuffled registration order: the shortlist must not depend on it.
	for i := len(sns) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		sns[i], sns[j] = sns[j], sns[i]
	}
	f, err := BuildFog(cfg, dcs, sns, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestShortlistMatchesReference is the property test for the tentpole: on
// randomized instances — varying supernode counts, k, capacity exhaustion,
// Exclude blacklists, churned registrations — the spatial-indexed shortlist
// must return exactly the same supernodes in the same order as the naive
// scan-and-sort reference.
func TestShortlistMatchesReference(t *testing.T) {
	rng := sim.NewRand(20260805)
	for trial := 0; trial < 40; trial++ {
		cfg := testConfig()
		if trial%2 == 1 {
			cfg.Locator.ErrorSigma = 120 // noisy geolocation; clamped estimates
		}
		if trial%5 == 2 {
			cfg.Exclude = func(id int64) bool { return id%4 == 0 }
		}
		s := 1 + rng.Intn(300)
		f := buildRandomFog(t, cfg, s, rng)

		// Churn the registration set: deregister a few, re-register fresh
		// instances, so the index has seen removes as well as inserts.
		for _, sn := range append([]*Supernode(nil), f.snOrder...) {
			if rng.Float64() < 0.15 {
				spec := *sn
				f.DeregisterSupernode(sn.ID)
				if rng.Float64() < 0.5 {
					fresh := NewSupernode(spec.ID, spec.Pos, spec.Capacity, spec.Uplink)
					if err := f.RegisterSupernode(fresh); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		// Exhaust a random subset of supernode capacity so the filter has
		// zero-capacity nodes to skip mid-traversal.
		pid := int64(1)
		for _, sn := range f.snOrder {
			if rng.Float64() < 0.3 {
				for sn.Available() > 0 {
					sn.players[pid] = &Player{ID: pid}
					pid++
				}
			}
		}

		for q := 0; q < 25; q++ {
			x := rng.Float64() * cfg.Region.Width
			y := rng.Float64() * cfg.Region.Height
			k := 1 + rng.Intn(30)
			got := f.shortlist(x, y, k)
			want := shortlistReference(f, x, y, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d query %d (S=%d k=%d): got %d candidates, reference %d",
					trial, q, s, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d query %d (S=%d k=%d): position %d: got supernode %d, reference %d",
						trial, q, s, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

// TestShortlistSkipsExhaustedAndExcluded pins the two traversal filters.
func TestShortlistSkipsExhaustedAndExcluded(t *testing.T) {
	cfg := testConfig()
	cfg.Exclude = func(id int64) bool { return id == 1_000_003 }
	f := buildTestFog(t, cfg, 10)
	full := f.sns[1_000_001]
	for full.Available() > 0 {
		full.players[int64(1000+full.Load())] = &Player{}
	}
	got := f.shortlist(cfg.Region.Center().X, cfg.Region.Center().Y, 10)
	if len(got) != 8 {
		t.Fatalf("shortlist returned %d of 10 supernodes, want 8 (one full, one excluded)", len(got))
	}
	for _, sn := range got {
		if sn.ID == 1_000_001 || sn.ID == 1_000_003 {
			t.Fatalf("shortlist returned filtered supernode %d", sn.ID)
		}
	}
}

// --- Shortlist microbenchmarks: the scaling curve toward millions of
// users. BenchmarkShortlist queries the spatial index; the Naive variant
// runs the scan-and-sort reference on the identical fog. ---

func benchFogAt(b *testing.B, s int) *Fog {
	b.Helper()
	cfg := DefaultConfig(17)
	return buildRandomFog(b, cfg, s, sim.NewRand(int64(s)))
}

func BenchmarkShortlist(b *testing.B) {
	for _, s := range []int{600, 5_000, 50_000} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			f := benchFogAt(b, s)
			rng := sim.NewRand(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := rng.Float64() * f.cfg.Region.Width
				y := rng.Float64() * f.cfg.Region.Height
				if got := f.shortlist(x, y, f.cfg.Candidates); len(got) == 0 {
					b.Fatal("empty shortlist")
				}
			}
		})
	}
}

func BenchmarkShortlistNaive(b *testing.B) {
	for _, s := range []int{600, 5_000, 50_000} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			f := benchFogAt(b, s)
			rng := sim.NewRand(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := rng.Float64() * f.cfg.Region.Width
				y := rng.Float64() * f.cfg.Region.Height
				if got := shortlistReference(f, x, y, f.cfg.Candidates); len(got) == 0 {
					b.Fatal("empty shortlist")
				}
			}
		})
	}
}
