package core

import (
	"fmt"
	"sort"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/health"
	"cloudfog/internal/obs"
	"cloudfog/internal/sim"
	"cloudfog/internal/spatial"
)

// Fog is the CloudFog system: a cloud of datacenters plus a fog of
// registered supernodes. It implements the System interface used by the
// experiment harness.
//
// A Fog is not safe for concurrent use: the assignment protocol reuses
// per-instance scratch buffers so the steady-state join/failover path does
// not allocate.
type Fog struct {
	cfg Config
	rng *sim.Rand

	dcs     []*Datacenter
	sns     map[int64]*Supernode
	snOrder []*Supernode // registration order, for deterministic iteration

	// snEstPos is the cloud's geolocated view of each supernode's
	// position (paper §III-A3: coordinates determined from IP addresses).
	snEstPos map[int64]struct{ x, y float64 }

	// snIdx spatially indexes the geolocated supernode table so the
	// shortlist step is an expanding-ring k-nearest query instead of a
	// scan-and-sort over every registered supernode. The index holds all
	// registered supernodes regardless of load: capacity and blacklist
	// filtering happen during query traversal, so attach/detach never
	// touch the index.
	snIdx *spatial.Grid
	// shortlistOK is the query-time filter, bound once so the hot path
	// does not allocate a closure per shortlist.
	shortlistOK func(id int64) bool

	players map[int64]*Player

	// attachCounter stamps every supernode attachment so overload
	// migration can evict newest-first (the players with the least
	// session investment on the node).
	attachCounter int64

	// Scratch buffers reused across assignment-protocol calls.
	nbrScratch   []spatial.Neighbor
	candScratch  []*Supernode
	probeScratch []probe
}

// probe is one shortlist candidate with its probed streaming-hop delay.
type probe struct {
	sn    *Supernode
	delay time.Duration
}

// RandDraws returns how many draws the fog's geolocation stream has made —
// the control plane's RNG witness for the flight recorder. The count is a
// pure function of the join/failover history, so a replay that diverges
// anywhere in the assignment protocol shows up here even when the figure
// bytes happen to agree.
func (f *Fog) RandDraws() uint64 { return f.rng.Draws() }

// emit forwards an assignment event to the configured sink, if any.
func (f *Fog) emit(kind obs.EventKind, node, player, a int64) {
	o := f.cfg.Obs
	if o == nil || o.Sink == nil {
		return
	}
	o.Sink(obs.Event{Kind: kind, Node: node, Player: player, A: a})
}

// BuildFog constructs a Fog with the given datacenters and supernodes. The
// rng drives geolocation error draws; pass a dedicated stream for
// reproducibility.
func BuildFog(cfg Config, dcs []*Datacenter, sns []*Supernode, rng *sim.Rand) (*Fog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(dcs) == 0 {
		return nil, fmt.Errorf("core: a fog needs at least one datacenter")
	}
	f := &Fog{
		cfg:      cfg,
		rng:      rng,
		dcs:      dcs,
		sns:      make(map[int64]*Supernode, len(sns)),
		snEstPos: make(map[int64]struct{ x, y float64 }, len(sns)),
		snIdx:    spatial.NewGrid(cfg.Region.Width, cfg.Region.Height),
		players:  make(map[int64]*Player),
	}
	f.shortlistOK = func(id int64) bool {
		if f.cfg.Exclude != nil && f.cfg.Exclude(id) {
			return false
		}
		if f.cfg.Overload != nil && !f.cfg.Overload.Admit(id) {
			if f.cfg.Health != nil {
				f.cfg.Health.JoinsRejected.Inc()
			}
			return false
		}
		return f.sns[id].Available() > 0
	}
	for _, sn := range sns {
		if err := f.RegisterSupernode(sn); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Name identifies the system in experiment output.
func (f *Fog) Name() string { return "CloudFog" }

// Datacenters returns the fog's datacenters.
func (f *Fog) Datacenters() []*Datacenter { return f.dcs }

// Supernodes returns the registered supernodes in registration order.
func (f *Fog) Supernodes() []*Supernode { return f.snOrder }

// Supernode returns the registered supernode with the given ID, if any.
func (f *Fog) Supernode(id int64) (*Supernode, bool) {
	sn, ok := f.sns[id]
	return sn, ok
}

// EstimatedPos returns the cloud's geolocated view of a supernode's
// position — the coordinates the assignment shortlist indexes. The shard
// planner partitions by this estimate (not the true position) so a shard
// owns exactly the nodes its grid cells answer queries for.
func (f *Fog) EstimatedPos(id int64) (x, y float64, ok bool) {
	p, ok := f.snEstPos[id]
	return p.x, p.y, ok
}

// OnlinePlayers returns the number of players currently served.
func (f *Fog) OnlinePlayers() int { return len(f.players) }

// RegisterSupernode adds a supernode to the fog. The supernode probes all
// datacenters and attaches to the minimum-latency one for state updates;
// the cloud records its geolocated position for future shortlists.
func (f *Fog) RegisterSupernode(sn *Supernode) error {
	if _, dup := f.sns[sn.ID]; dup {
		return fmt.Errorf("core: supernode %d already registered", sn.ID)
	}
	best := f.dcs[0]
	bestLat := f.cfg.Latency.OneWay(best.Endpoint(), sn.Endpoint())
	for _, dc := range f.dcs[1:] {
		if l := f.cfg.Latency.OneWay(dc.Endpoint(), sn.Endpoint()); l < bestLat {
			best, bestLat = dc, l
		}
	}
	sn.DC = best
	sn.UpdateLatency = bestLat
	f.sns[sn.ID] = sn
	f.snOrder = append(f.snOrder, sn)
	est := f.cfg.Locator.Locate(sn.Pos, f.rng)
	f.snEstPos[sn.ID] = struct{ x, y float64 }{est.X, est.Y}
	f.snIdx.Insert(sn.ID, est.X, est.Y)
	return nil
}

// DeregisterSupernode removes a supernode gracefully (paper: supernodes
// notify the central server before leaving): its players fail over to their
// backups or rejoin through the full assignment protocol immediately.
func (f *Fog) DeregisterSupernode(id int64) {
	for _, p := range f.FailSupernode(id) {
		f.Failover(p)
	}
}

// FailSupernode removes a supernode abruptly — a crash, not a graceful
// leave — and returns its orphaned players in ID order with their
// attachments cleared but NOT repaired. The caller decides when each orphan
// fails over (the fault injector delays repairs by the failure-detection
// interval); until then the orphan is unserved. The returned slice is owned
// by the caller.
func (f *Fog) FailSupernode(id int64) []*Player {
	sn, ok := f.sns[id]
	if !ok {
		return nil
	}
	delete(f.sns, id)
	delete(f.snEstPos, id)
	f.snIdx.Remove(id)
	for i, s := range f.snOrder {
		if s.ID == id {
			f.snOrder = append(f.snOrder[:i], f.snOrder[i+1:]...)
			break
		}
	}
	orphans := make([]*Player, 0, len(sn.players))
	for _, p := range sn.players {
		orphans = append(orphans, p)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].ID < orphans[j].ID })
	sn.players = make(map[int64]*Player)
	for _, p := range orphans {
		p.Attached = Attachment{}
	}
	if f.cfg.Overload != nil {
		f.cfg.Overload.Forget(id)
	}
	return orphans
}

// Failover repairs one orphaned player through the backup-first protocol.
// It reports false without acting when the player is no longer repairable:
// already gone offline (its session ended while the orphan sat undetected)
// or already serving again through some other path. Callers accounting for
// orphans must count a false return as a lapsed repair.
func (f *Fog) Failover(p *Player) bool {
	if !p.Online || p.Attached.Served() {
		return false
	}
	f.failover(p)
	return true
}

// SetExclude replaces the supernode blacklist filter applied by shortlists
// and failovers. The fault injector uses it to keep crashed-but-undetected
// supernodes assignable (the cloud has not noticed yet) or not, depending on
// the experiment.
func (f *Fog) SetExclude(fn func(snID int64) bool) { f.cfg.Exclude = fn }

// Join runs the supernode assignment protocol of §III-A3 for a player and
// returns the resulting attachment.
func (f *Fog) Join(p *Player) Attachment {
	if p.Online {
		return p.Attached
	}
	p.Online = true
	f.players[p.ID] = p
	f.assign(p)
	return p.Attached
}

// Leave detaches a player from its serving node.
func (f *Fog) Leave(p *Player) {
	if !p.Online {
		return
	}
	p.Online = false
	delete(f.players, p.ID)
	f.detach(p)
	p.Backups = nil
}

func (f *Fog) detach(p *Player) {
	switch p.Attached.Kind {
	case AttachSupernode:
		delete(p.Attached.SN.players, p.ID)
		f.observeOccupancy(p.Attached.SN)
	case AttachCloud, AttachEdge:
		p.Attached.DC.RemoveDirect(p.ID)
	}
	p.Attached = Attachment{}
}

// observeOccupancy feeds a supernode's post-change slot occupancy into the
// overload ladder. One nil-check when the ladder is off.
func (f *Fog) observeOccupancy(sn *Supernode) {
	if f.cfg.Overload != nil {
		f.cfg.Overload.Observe(sn.ID, sn.Load(), sn.Capacity)
	}
}

// attachSN commits a supernode attachment: membership, the attachment
// record, the migration-order stamp, and the ladder observation.
func (f *Fog) attachSN(p *Player, sn *Supernode, streamLat time.Duration) {
	sn.players[p.ID] = p
	p.Attached = Attachment{
		Kind:          AttachSupernode,
		DC:            sn.DC,
		SN:            sn,
		StreamLatency: streamLat,
		UpdateLatency: sn.UpdateLatency,
	}
	f.attachCounter++
	p.attachSeq = f.attachCounter
	f.observeOccupancy(sn)
}

// now reads the control-plane clock, frozen at zero when unset.
func (f *Fog) now() time.Duration {
	if f.cfg.Now != nil {
		return f.cfg.Now()
	}
	return 0
}

// assign implements the join protocol: the cloud shortlists the
// geographically closest supernodes with available capacity, the player
// probes their transmission delay, drops candidates above its L_max
// threshold, attaches to the fastest and records the rest as backups; a
// player with no qualified supernode connects directly to the cloud.
func (f *Fog) assign(p *Player) {
	est := f.cfg.Locator.Locate(p.Pos, f.rng)
	cands := f.shortlist(est.X, est.Y, f.cfg.Candidates)
	lmax := f.cfg.Lmax(p.Game.NetworkBudget())

	budget := p.Game.NetworkBudget()
	// The guaranteed transmission floor: a supernode provisions
	// UplinkPerSlot per supported player, so one segment at the game's
	// bitrate takes at least segBytes/perSlot to send.
	segBits := float64(f.cfg.Stream.SegmentBytes(p.Game.Quality().Bitrate)) * 8
	minTrans := time.Duration(segBits / float64(f.cfg.UplinkPerSlot) * float64(time.Second))
	probes := f.probeScratch[:0]
	for _, sn := range cands {
		d := f.cfg.Latency.OneWay(p.Endpoint(), sn.Endpoint())
		// A candidate qualifies when the probed streaming hop fits the
		// player's L_max threshold and the full serving path — update hop
		// and per-slot transmission floor included — fits the game's
		// network budget; otherwise streaming from this supernode could
		// not possibly satisfy the player and the direct cloud connection
		// is the better fallback.
		if d <= lmax && d+sn.UpdateLatency+minTrans <= budget {
			probes = append(probes, probe{sn, d})
		}
	}
	f.probeScratch = probes
	// Rank candidates by total serving-path delay: the probed streaming
	// hop plus the supernode's advertised cloud→supernode update latency.
	// The video for an action cannot be rendered before the update
	// arrives, so both hops are on the response path. A stable insertion
	// sort keeps shortlist order among equal-delay candidates without the
	// allocations of sort.SliceStable; the shortlist is at most
	// cfg.Candidates long.
	for i := 1; i < len(probes); i++ {
		for j := i; j > 0 && probes[j].delay+probes[j].sn.UpdateLatency <
			probes[j-1].delay+probes[j-1].sn.UpdateLatency; j-- {
			probes[j], probes[j-1] = probes[j-1], probes[j]
		}
	}

	for i, pr := range probes {
		if pr.sn.Available() <= 0 {
			continue
		}
		f.attachSN(p, pr.sn, pr.delay)
		rest := probes[i+1:]
		if cap(p.Backups) < len(rest) {
			p.Backups = make([]*Supernode, 0, len(rest))
		} else {
			p.Backups = p.Backups[:0]
		}
		for _, b := range rest {
			// A shedding supernode has stepped off backup duty: recording
			// it would aim future failovers at an overloaded node.
			if f.cfg.Overload != nil && !f.cfg.Overload.AllowBackup(b.sn.ID) {
				continue
			}
			p.Backups = append(p.Backups, b.sn)
		}
		if o := f.cfg.Obs; o != nil {
			o.JoinsFog.Inc()
			f.emit(obs.EventAssign, pr.sn.ID, p.ID, 1)
		}
		return
	}
	f.attachCloud(p, est.X, est.Y)
}

// failover reattaches an orphaned player, preferring its recorded backups
// (re-probed for liveness, capacity and delay) before rerunning the full
// protocol.
func (f *Fog) failover(p *Player) {
	lmax := f.cfg.Lmax(p.Game.NetworkBudget())
	for i, sn := range p.Backups {
		// The backup must still be the registered machine: a departed
		// supernode whose contributor later re-registers under the same
		// ID is a fresh instance, and this stale pointer must not absorb
		// players behind its back.
		if live, ok := f.sns[sn.ID]; !ok || live != sn || sn.Available() <= 0 {
			continue
		}
		if f.cfg.Exclude != nil && f.cfg.Exclude(sn.ID) {
			continue
		}
		if f.cfg.Overload != nil && !f.cfg.Overload.Admit(sn.ID) {
			if f.cfg.Health != nil {
				f.cfg.Health.JoinsRejected.Inc()
			}
			continue
		}
		d := f.cfg.Latency.OneWay(p.Endpoint(), sn.Endpoint())
		if d > lmax {
			continue
		}
		f.attachSN(p, sn, d)
		p.Backups = p.Backups[i+1:]
		if o := f.cfg.Obs; o != nil {
			o.FailoverBackupHits.Inc()
			f.emit(obs.EventFailover, sn.ID, p.ID, 1)
		}
		return
	}
	p.Backups = nil
	if o := f.cfg.Obs; o != nil {
		o.FailoverReassigns.Inc()
		f.emit(obs.EventFailover, 0, p.ID, 0)
	}
	f.assign(p)
}

// TryReassign attempts to move a fog-served player to a different qualified
// supernode with a strictly better total serving path (stream + update
// hops), optionally avoiding supernodes for which avoid returns true. The
// player keeps its current attachment unless a strictly better one commits,
// so the call never makes a player worse.
//
// This is the primitive behind supernode cooperation (the paper's §V future
// work): after churn and failovers scatter players onto second-best
// supernodes, cooperating supernodes shed them back to better homes.
func (f *Fog) TryReassign(p *Player, avoid func(*Supernode) bool) bool {
	if !p.Online || p.Attached.Kind != AttachSupernode {
		return false
	}
	cur := p.Attached.SN
	curTotal := p.Attached.StreamLatency + p.Attached.UpdateLatency

	est := f.cfg.Locator.Locate(p.Pos, f.rng)
	cands := f.shortlist(est.X, est.Y, f.cfg.Candidates)
	lmax := f.cfg.Lmax(p.Game.NetworkBudget())
	budget := p.Game.NetworkBudget()
	segBits := float64(f.cfg.Stream.SegmentBytes(p.Game.Quality().Bitrate)) * 8
	minTrans := time.Duration(segBits / float64(f.cfg.UplinkPerSlot) * float64(time.Second))

	var best *Supernode
	var bestStream time.Duration
	bestTotal := curTotal
	for _, sn := range cands {
		if sn == cur || sn.Available() <= 0 || (avoid != nil && avoid(sn)) {
			continue
		}
		d := f.cfg.Latency.OneWay(p.Endpoint(), sn.Endpoint())
		if d > lmax || d+sn.UpdateLatency+minTrans > budget {
			continue
		}
		if total := d + sn.UpdateLatency; total < bestTotal {
			best, bestStream, bestTotal = sn, d, total
		}
	}
	if best == nil {
		return false
	}
	delete(cur.players, p.ID)
	f.observeOccupancy(cur)
	f.attachSN(p, best, bestStream)
	if o := f.cfg.Obs; o != nil {
		o.Reassigned.Inc()
	}
	return true
}

// RelieveOverloaded migrates players off every supernode whose degradation
// ladder reached the Migrating rung: newest attachments leave first (they
// have the least session investment on the node) and rejoin through the full
// assignment protocol, whose admission control keeps them off still-rejecting
// nodes. The sweep repeats per node until its ladder retreats below
// Migrating or it has no players left. Returns how many players moved.
func (f *Fog) RelieveOverloaded() int {
	o := f.cfg.Overload
	if o == nil {
		return 0
	}
	prev := f.cfg.Exclude
	// While a node drains, it must not re-admit its own evictees: shedding
	// relaxes the shedder's ladder mid-loop, so without the draining-ID
	// exclusion a small node takes the migrated player straight back and
	// ping-pongs forever. Evictees are also kept off any node that one more
	// admit would tip into Migrating — otherwise relief just moves the
	// overflow sideways (a two-slot node jumps Normal→Migrating on a single
	// join) and the sweep chases it around the fog.
	draining := int64(-1)
	f.cfg.Exclude = func(x int64) bool {
		if x == draining || (prev != nil && prev(x)) {
			return true
		}
		if sn := f.sns[x]; sn != nil && o.WouldMigrate(sn.Load()+1, sn.Capacity) {
			return true
		}
		return false
	}
	moved := 0
	// Draining one node can tip a smaller one into Migrating after its
	// turn, so passes repeat until one moves nobody — with a hard cap so
	// the call provably terminates (stragglers wait for the next relief
	// tick).
	for pass := 0; pass < 8; pass++ {
		movedThisPass := 0
		for _, sn := range f.snOrder {
			draining = sn.ID
			for o.ShouldMigrate(sn.ID) && sn.Load() > 0 {
				var newest *Player
				for _, p := range sn.players {
					// attachSeq is unique, so the scan is deterministic
					// even over map order.
					if newest == nil || p.attachSeq > newest.attachSeq {
						newest = p
					}
				}
				delete(sn.players, newest.ID)
				f.observeOccupancy(sn)
				newest.Attached = Attachment{}
				newest.Backups = nil
				f.assign(newest)
				movedThisPass++
				if f.cfg.Health != nil {
					f.cfg.Health.Migrations.Inc()
				}
			}
		}
		moved += movedThisPass
		if movedThisPass == 0 {
			break
		}
	}
	f.cfg.Exclude = prev
	return moved
}

// SupernodeLevelCap returns the encoding-ladder cap the overload ladder
// currently imposes on one supernode's players, given a player's preferred
// start level; 0 means uncapped (no ladder configured).
func (f *Fog) SupernodeLevelCap(snID int64, startLevel int) int {
	if f.cfg.Overload == nil {
		return 0
	}
	return f.cfg.Overload.LevelCap(snID, startLevel)
}

// Overload returns the configured degradation ladder, if any.
func (f *Fog) Overload() *health.Overload { return f.cfg.Overload }

// attachCloud connects a player directly to the geographically closest
// datacenter (by the cloud's estimate of the player's position). When a
// circuit breaker guards the fallback, a degraded cloud is probed on the
// breaker's schedule instead of absorbing every failover: a denied attach
// leaves the player unserved until the next probe window.
func (f *Fog) attachCloud(p *Player, estX, estY float64) {
	b := f.cfg.Breaker
	var now time.Duration
	if b != nil {
		now = f.now()
		if !b.Allow(now) {
			return
		}
	}
	best := f.dcs[0]
	bestDist := dist2(estX, estY, best.Pos.X, best.Pos.Y)
	for _, dc := range f.dcs[1:] {
		if d := dist2(estX, estY, dc.Pos.X, dc.Pos.Y); d < bestDist {
			best, bestDist = dc, d
		}
	}
	best.AddDirect(p)
	p.Attached = Attachment{
		Kind:          AttachCloud,
		DC:            best,
		StreamLatency: f.cfg.Latency.OneWay(p.Endpoint(), best.Endpoint()),
	}
	if b != nil {
		// The probe's verdict is whether the cloud's egress can sustain the
		// player's stream in real time at any ladder level: a degraded
		// cloud (collapsed egress) cannot carry even the lowest level and
		// trips the breaker instead of collecting more players. A healthy
		// cloud that merely misses the game's latency budget — the normal
		// case the fog exists to fix — is not a breaker failure, and the
		// player's own downlink never counts against the cloud.
		if best.Share() >= mustBitrate(1) {
			b.RecordSuccess(now)
		} else {
			b.RecordFailure(now)
		}
	}
	if o := f.cfg.Obs; o != nil {
		o.JoinsCloud.Inc()
		f.emit(obs.EventAssign, best.ID, p.ID, 0)
	}
}

// shortlist returns the k supernodes with available capacity closest to the
// estimated position, using the cloud's geolocated supernode table. The
// spatial index answers in O(k log k + cells visited) and skips
// zero-capacity and blacklisted supernodes during traversal; equal
// distances break on supernode ID, so the shortlist is a deterministic
// function of the registered set alone. The returned slice is scratch
// owned by the Fog, valid until the next shortlist call.
func (f *Fog) shortlist(x, y float64, k int) []*Supernode {
	f.nbrScratch = f.snIdx.NearestInto(f.nbrScratch[:0], x, y, k, f.shortlistOK)
	out := f.candScratch[:0]
	for _, nb := range f.nbrScratch {
		out = append(out, f.sns[nb.ID])
	}
	f.candScratch = out
	return out
}

func dist2(ax, ay, bx, by float64) float64 {
	dx, dy := ax-bx, ay-by
	return dx*dx + dy*dy
}

// NetworkLatency returns the player's flow-level response network latency:
// the propagation latency of the serving path plus the transmission time of
// one video segment at the player's current bandwidth share. This is the
// quantity the coverage and latency figures aggregate.
func (f *Fog) NetworkLatency(p *Player) time.Duration {
	return FlowLatency(f.cfg, p)
}

// CloudBandwidth returns the cloud's current video egress consumption:
// Λ per active supernode (fog players cost the cloud only update traffic)
// plus full stream bandwidth for each directly-connected player.
func (f *Fog) CloudBandwidth() int64 {
	var total int64
	for _, sn := range f.snOrder {
		if sn.Load() > 0 {
			total += f.cfg.UpdateBandwidth
		}
	}
	for _, dc := range f.dcs {
		for _, p := range dc.direct {
			total += f.cfg.WireRate(p.Game.Quality().Bitrate)
		}
	}
	return total
}

// SupernodeUtilizations returns each active supernode's uplink utilization
// u_j (served stream bandwidth over uplink), keyed by supernode ID — the
// input to the incentive model of Eq. 1.
func (f *Fog) SupernodeUtilizations() map[int64]float64 {
	out := make(map[int64]float64, len(f.snOrder))
	for _, sn := range f.snOrder {
		var used int64
		for _, p := range sn.players {
			used += f.cfg.WireRate(p.Game.Quality().Bitrate)
		}
		u := float64(used) / float64(sn.Uplink)
		if u > 1 {
			u = 1
		}
		out[sn.ID] = u
	}
	return out
}

// FlowLatency is the shared flow-level latency model used by CloudFog and
// both baselines: propagation of the serving path plus one segment's
// transmission at the bottleneck share (serving node share vs. player
// downlink). Unserved players get an effectively infinite latency.
func FlowLatency(cfg Config, p *Player) time.Duration {
	return FlowLatencyAt(cfg, p, p.Game.Quality().Bitrate)
}

// FlowLatencyAt is FlowLatency with an explicit encoding bitrate, used to
// evaluate what latency a player would see at a different quality level
// (the flow-level proxy for the rate-adaptation strategy).
func FlowLatencyAt(cfg Config, p *Player, bitrate int64) time.Duration {
	a := p.Attached
	if !a.Served() {
		return time.Duration(1<<62 - 1) // effectively uncovered
	}
	var share int64
	switch a.Kind {
	case AttachSupernode:
		share = a.SN.Share()
	case AttachCloud, AttachEdge:
		share = a.DC.Share()
	}
	if p.Downlink > 0 && share > p.Downlink {
		share = p.Downlink
	}
	if share <= 0 {
		return time.Duration(1<<62 - 1)
	}
	segBytes := cfg.Stream.SegmentBytes(bitrate)
	trans := time.Duration(float64(segBytes) * 8 / float64(share) * float64(time.Second))
	return a.PathLatency() + trans
}

// AdaptedFlowLatency returns the flow latency of a player whose encoder may
// step down the quality ladder to fit the game's network budget: the
// highest level at or below the game's matched level that meets the budget,
// or the lowest ladder level if none does. This is the flow-level proxy for
// the receiver-driven rate adaptation when whole-system (rather than
// per-node event-driven) latency figures are computed.
func AdaptedFlowLatency(cfg Config, p *Player) time.Duration {
	budget := p.Game.NetworkBudget()
	for lvl := p.Game.StartLevel; lvl >= 1; lvl-- {
		l := FlowLatencyAt(cfg, p, mustBitrate(lvl))
		if l <= budget || lvl == 1 {
			return l
		}
	}
	return FlowLatencyAt(cfg, p, mustBitrate(1))
}

func mustBitrate(level int) int64 {
	q, err := game.LevelAt(level)
	if err != nil {
		panic(err)
	}
	return q.Bitrate
}
