package core

import (
	"testing"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
	"cloudfog/internal/trace"
)

func testConfig() Config {
	cfg := DefaultConfig(1)
	cfg.Locator.ErrorSigma = 0 // exact geolocation keeps tests deterministic
	return cfg
}

// benignModel returns the config's latency model with tiny pair noise, for
// tests whose assertions need every nearby probe to succeed.
func benignModel(cfg Config) trace.Model {
	m := cfg.Latency.(trace.Model)
	m.NoiseMedian = 2 * time.Millisecond
	return m
}

func mustGame(t *testing.T, id int) game.Game {
	t.Helper()
	g, err := game.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildTestFog makes a fog with one central datacenter and a line of
// supernodes near the region center.
func buildTestFog(t *testing.T, cfg Config, nSupernodes int) *Fog {
	t.Helper()
	center := cfg.Region.Center()
	dc := NewDatacenter(2_000_000, geo.Point{X: center.X + 1200, Y: center.Y}, cfg.DCEgress)
	sns := make([]*Supernode, nSupernodes)
	for i := range sns {
		pos := geo.Point{X: center.X + float64(i*15), Y: center.Y + 10}
		sns[i] = NewSupernode(1_000_000+int64(i), pos, 5, 5*cfg.UplinkPerSlot)
	}
	f, err := BuildFog(cfg, []*Datacenter{dc}, sns, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func testPlayer(id int64, pos geo.Point, g game.Game) *Player {
	return &Player{ID: id, Pos: pos, Game: g, Downlink: 20_000_000}
}

func TestBuildFogValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := BuildFog(cfg, nil, nil, sim.NewRand(1)); err == nil {
		t.Fatal("fog with no datacenters accepted")
	}
	bad := cfg
	bad.Candidates = 0
	dc := NewDatacenter(1, cfg.Region.Center(), cfg.DCEgress)
	if _, err := BuildFog(bad, []*Datacenter{dc}, nil, sim.NewRand(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRegisterSupernodeChoosesMinLatencyDC(t *testing.T) {
	cfg := testConfig()
	center := cfg.Region.Center()
	near := NewDatacenter(2_000_000, geo.Point{X: center.X + 50, Y: center.Y}, cfg.DCEgress)
	far := NewDatacenter(2_000_001, geo.Point{X: center.X + 2000, Y: center.Y}, cfg.DCEgress)
	sn := NewSupernode(1_000_000, center, 5, 5*cfg.UplinkPerSlot)
	f, err := BuildFog(cfg, []*Datacenter{far, near}, []*Supernode{sn}, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	wantNear := cfg.Latency.OneWay(near.Endpoint(), sn.Endpoint())
	wantFar := cfg.Latency.OneWay(far.Endpoint(), sn.Endpoint())
	if wantNear < wantFar && sn.DC != near {
		t.Fatalf("supernode attached to DC %d, want min-latency DC %d", sn.DC.ID, near.ID)
	}
	if sn.UpdateLatency != cfg.Latency.OneWay(sn.DC.Endpoint(), sn.Endpoint()) {
		t.Fatal("update latency not recorded")
	}
}

func TestRegisterDuplicateSupernode(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 1)
	dup := NewSupernode(1_000_000, cfg.Region.Center(), 5, 5*cfg.UplinkPerSlot)
	if err := f.RegisterSupernode(dup); err == nil {
		t.Fatal("duplicate supernode registration accepted")
	}
}

func TestJoinPrefersNearbySupernode(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 10)
	p := testPlayer(1, geo.Point{X: cfg.Region.Center().X, Y: cfg.Region.Center().Y}, mustGame(t, 5))
	a := f.Join(p)
	if a.Kind != AttachSupernode {
		t.Fatalf("player attached to %v, want supernode", a.Kind)
	}
	if a.SN.Load() != 1 {
		t.Fatalf("supernode load = %d, want 1", a.SN.Load())
	}
	// The chosen supernode must satisfy the player's L_max threshold.
	lmax := cfg.Lmax(p.Game.NetworkBudget())
	if a.StreamLatency > lmax {
		t.Fatalf("stream latency %v exceeds L_max %v", a.StreamLatency, lmax)
	}
	// Update hop recorded from the supernode's registration.
	if a.UpdateLatency != a.SN.UpdateLatency {
		t.Fatal("attachment update latency mismatch")
	}
	if f.OnlinePlayers() != 1 {
		t.Fatalf("online = %d, want 1", f.OnlinePlayers())
	}
}

func TestJoinChoosesMinTotalPathDelay(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 10)
	p := testPlayer(2, cfg.Region.Center(), mustGame(t, 5))
	a := f.Join(p)
	chosen := a.StreamLatency + a.UpdateLatency
	// No other qualified candidate may beat the chosen total serving-path
	// delay (stream hop + cloud->supernode update hop). With exact
	// geolocation and 10 supernodes, every supernode is in the shortlist.
	lmax := cfg.Lmax(p.Game.NetworkBudget())
	for _, sn := range f.Supernodes() {
		if sn == a.SN {
			continue
		}
		d := cfg.Latency.OneWay(p.Endpoint(), sn.Endpoint())
		if d <= lmax && d+sn.UpdateLatency < chosen {
			t.Fatalf("supernode %d has total path %v < chosen %v",
				sn.ID, d+sn.UpdateLatency, chosen)
		}
	}
}

func TestJoinRecordsBackups(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 10)
	p := testPlayer(3, cfg.Region.Center(), mustGame(t, 5))
	f.Join(p)
	if len(p.Backups) == 0 {
		t.Fatal("no backups recorded despite several qualified candidates")
	}
	for _, b := range p.Backups {
		if b == p.Attached.SN {
			t.Fatal("serving supernode listed as backup")
		}
	}
}

func TestJoinFallsBackToCloudWhenNoSupernodeQualifies(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 10)
	// A player on the far edge of the region: all supernodes are ~2000 km
	// away, well beyond any game's L_max.
	p := testPlayer(4, geo.Point{X: 0, Y: 0}, mustGame(t, 1))
	a := f.Join(p)
	if a.Kind != AttachCloud {
		t.Fatalf("remote player attached to %v, want cloud fallback", a.Kind)
	}
	if a.DC == nil || a.DC.DirectPlayers() != 1 {
		t.Fatal("cloud fallback did not register at the datacenter")
	}
}

func TestJoinRespectsCapacity(t *testing.T) {
	cfg := testConfig()
	// A benign latency landscape (tiny pair noise) keeps every probe well
	// inside the game-5 budget, so the capacity limit is the only thing
	// stopping joins.
	cfg.Latency = benignModel(cfg)
	center := cfg.Region.Center()
	dc := NewDatacenter(2_000_000, geo.Point{X: center.X + 300, Y: center.Y}, cfg.DCEgress)
	sn := NewSupernode(1_000_000, center, 2, 2*cfg.UplinkPerSlot) // capacity 2
	f, err := BuildFog(cfg, []*Datacenter{dc}, []*Supernode{sn}, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	attached := 0
	for i := int64(0); i < 5; i++ {
		p := testPlayer(10+i, center, mustGame(t, 5))
		if f.Join(p).Kind == AttachSupernode {
			attached++
		}
	}
	if attached != 2 {
		t.Fatalf("supernode served %d players, capacity is 2", attached)
	}
	if sn.Available() != 0 {
		t.Fatalf("available = %d, want 0", sn.Available())
	}
}

func TestLeaveFreesCapacity(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 3)
	p := testPlayer(20, cfg.Region.Center(), mustGame(t, 5))
	a := f.Join(p)
	sn := a.SN
	f.Leave(p)
	if p.Online || p.Attached.Served() {
		t.Fatal("player still marked online/attached after Leave")
	}
	if sn.Load() != 0 {
		t.Fatalf("supernode load = %d after leave, want 0", sn.Load())
	}
	if f.OnlinePlayers() != 0 {
		t.Fatal("online count not decremented")
	}
	// Double leave is a no-op.
	f.Leave(p)
}

func TestJoinIdempotent(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 3)
	p := testPlayer(21, cfg.Region.Center(), mustGame(t, 5))
	a1 := f.Join(p)
	a2 := f.Join(p)
	if a1 != a2 {
		t.Fatal("second Join changed the attachment")
	}
	if a1.SN.Load() != 1 {
		t.Fatalf("double join double-registered: load %d", a1.SN.Load())
	}
}

func TestDeregisterSupernodeFailsOverToBackup(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 10)
	p := testPlayer(30, cfg.Region.Center(), mustGame(t, 5))
	f.Join(p)
	serving := p.Attached.SN
	backups := len(p.Backups)
	if backups == 0 {
		t.Fatal("test needs backups")
	}
	f.DeregisterSupernode(serving.ID)
	if !p.Attached.Served() {
		t.Fatal("player left unserved after supernode departure")
	}
	if p.Attached.SN == serving {
		t.Fatal("player still attached to departed supernode")
	}
	if p.Attached.Kind != AttachSupernode {
		t.Fatalf("failover attached to %v, want a backup supernode", p.Attached.Kind)
	}
	if len(f.Supernodes()) != 9 {
		t.Fatalf("supernode list has %d entries, want 9", len(f.Supernodes()))
	}
}

func TestDeregisterLastSupernodeFallsBackToCloud(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 1)
	p := testPlayer(31, cfg.Region.Center(), mustGame(t, 5))
	f.Join(p)
	if p.Attached.Kind != AttachSupernode {
		t.Skip("player did not attach to the single supernode")
	}
	f.DeregisterSupernode(p.Attached.SN.ID)
	if p.Attached.Kind != AttachCloud {
		t.Fatalf("player attached to %v after last supernode left, want cloud", p.Attached.Kind)
	}
}

func TestDeregisterUnknownSupernodeIsNoop(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 2)
	f.DeregisterSupernode(999999)
	if len(f.Supernodes()) != 2 {
		t.Fatal("deregistering unknown supernode mutated the list")
	}
}

func TestNetworkLatencyComposition(t *testing.T) {
	cfg := testConfig()
	cfg.Latency = benignModel(cfg) // fog attach guaranteed
	f := buildTestFog(t, cfg, 5)
	p := testPlayer(40, cfg.Region.Center(), mustGame(t, 5))
	a := f.Join(p)
	if a.Kind != AttachSupernode {
		t.Fatalf("player attached to %v, want supernode", a.Kind)
	}
	got := f.NetworkLatency(p)
	if got <= a.PathLatency() {
		t.Fatalf("network latency %v must exceed pure propagation %v (transmission time)", got, a.PathLatency())
	}
	// With a lightly loaded supernode the transmission time is segment
	// bytes over min(share, downlink).
	share := a.SN.Share()
	if p.Downlink < share {
		share = p.Downlink
	}
	segBytes := cfg.Stream.SegmentBytes(p.Game.Quality().Bitrate)
	wantTrans := time.Duration(float64(segBytes) * 8 / float64(share) * float64(time.Second))
	if got != a.PathLatency()+wantTrans {
		t.Fatalf("latency = %v, want %v", got, a.PathLatency()+wantTrans)
	}
}

func TestNetworkLatencyUnservedIsHuge(t *testing.T) {
	cfg := testConfig()
	p := testPlayer(41, cfg.Region.Center(), mustGame(t, 5))
	if FlowLatency(cfg, p) < time.Hour {
		t.Fatal("unserved player should have effectively infinite latency")
	}
}

func TestCloudBandwidthAccounting(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 5)
	// One fog-served player: cloud pays only Λ for the one active supernode.
	p1 := testPlayer(50, cfg.Region.Center(), mustGame(t, 5))
	f.Join(p1)
	if got := f.CloudBandwidth(); got != cfg.UpdateBandwidth {
		t.Fatalf("cloud bandwidth = %d, want Λ = %d", got, cfg.UpdateBandwidth)
	}
	// A remote strict-latency player forced to the cloud adds a full
	// wire-rate stream (game 1: no supernode can meet a 24 ms L_max from
	// 2700 km away).
	p2 := testPlayer(51, geo.Point{X: 0, Y: 0}, mustGame(t, 1))
	f.Join(p2)
	want := cfg.UpdateBandwidth + cfg.WireRate(p2.Game.Quality().Bitrate)
	if got := f.CloudBandwidth(); got != want {
		t.Fatalf("cloud bandwidth = %d, want %d", got, want)
	}
}

func TestSupernodeUtilizations(t *testing.T) {
	cfg := testConfig()
	cfg.Latency = benignModel(cfg) // fog attach guaranteed
	f := buildTestFog(t, cfg, 2)
	p := testPlayer(60, cfg.Region.Center(), mustGame(t, 5)) // 1800kbps
	f.Join(p)
	if p.Attached.Kind != AttachSupernode {
		t.Fatalf("player attached to %v, want supernode", p.Attached.Kind)
	}
	utils := f.SupernodeUtilizations()
	if len(utils) != 2 {
		t.Fatalf("got %d utilizations, want 2", len(utils))
	}
	sn := p.Attached.SN
	want := float64(cfg.WireRate(1_800_000)) / float64(sn.Uplink)
	if got := utils[sn.ID]; got != want {
		t.Fatalf("utilization = %v, want %v", got, want)
	}
}

func TestLmaxScalesWithGame(t *testing.T) {
	cfg := testConfig()
	strict := cfg.Lmax(mustGame(t, 1).NetworkBudget())
	loose := cfg.Lmax(mustGame(t, 5).NetworkBudget())
	if strict >= loose {
		t.Fatalf("L_max(30ms game) %v >= L_max(110ms game) %v", strict, loose)
	}
	if strict != 24*time.Millisecond {
		t.Fatalf("L_max for 30ms budget = %v, want 24ms (factor 0.8)", strict)
	}
}

func TestAttachKindString(t *testing.T) {
	if AttachNone.String() != "none" || AttachCloud.String() != "cloud" ||
		AttachSupernode.String() != "supernode" || AttachEdge.String() != "edge" {
		t.Fatal("attach kind names wrong")
	}
	if AttachKind(9).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}

func TestGeolocationErrorStillFindsSupernodes(t *testing.T) {
	cfg := testConfig()
	cfg.Locator.ErrorSigma = 50 // realistic IP-geolocation error
	f := buildTestFog(t, cfg, 10)
	p := testPlayer(70, cfg.Region.Center(), mustGame(t, 5))
	if a := f.Join(p); a.Kind != AttachSupernode {
		t.Fatalf("player attached to %v despite nearby supernodes", a.Kind)
	}
}
