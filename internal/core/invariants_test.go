package core

import (
	"testing"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

// TestFogInvariantsUnderRandomOps drives a fog through random join, leave,
// supernode-departure and supernode-return operations and checks the
// structural invariants after every step:
//
//   - a supernode's load never exceeds its capacity;
//   - every online player is served (supernode or cloud), every offline
//     player is detached;
//   - the serving node's membership agrees with the player's attachment;
//   - backups never include the serving supernode or departed supernodes'
//     stale capacity.
func TestFogInvariantsUnderRandomOps(t *testing.T) {
	cfg := testConfig()
	rng := sim.NewRand(20260705)
	placer := geo.DefaultUSPlacer()

	const nSN = 30
	const nPlayers = 120
	const steps = 3000

	center := cfg.Region.Center()
	dcs := []*Datacenter{
		NewDatacenter(2_000_000, geo.Point{X: center.X - 1000, Y: center.Y}, cfg.DCEgress),
		NewDatacenter(2_000_001, geo.Point{X: center.X + 1000, Y: center.Y}, cfg.DCEgress),
	}
	specs := make([]*Supernode, nSN)
	for i := range specs {
		capacity := 1 + rng.Intn(6)
		specs[i] = NewSupernode(1_000_000+int64(i), placer.Place(rng), capacity,
			int64(capacity)*cfg.UplinkPerSlot)
	}
	fog, err := BuildFog(cfg, dcs, specs, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}

	players := make([]*Player, nPlayers)
	for i := range players {
		g, _ := game.ByID(1 + rng.Intn(5))
		players[i] = &Player{ID: int64(i), Pos: placer.Place(rng), Game: g, Downlink: 20_000_000}
	}
	registered := make(map[int64]*Supernode)
	for _, sn := range specs {
		registered[sn.ID] = sn
	}

	check := func(step int) {
		t.Helper()
		// Per-supernode load vs capacity and membership agreement.
		attachedCount := make(map[int64]int)
		for _, p := range players {
			if p.Online {
				if !p.Attached.Served() {
					t.Fatalf("step %d: online player %d unserved", step, p.ID)
				}
				switch p.Attached.Kind {
				case AttachSupernode:
					sn := p.Attached.SN
					if _, live := registered[sn.ID]; !live {
						t.Fatalf("step %d: player %d attached to departed supernode %d", step, p.ID, sn.ID)
					}
					attachedCount[sn.ID]++
					found := false
					for _, id := range sn.Players() {
						if id == p.ID {
							found = true
						}
					}
					if !found {
						t.Fatalf("step %d: supernode %d does not list its player %d", step, sn.ID, p.ID)
					}
				case AttachCloud:
					if p.Attached.DC == nil {
						t.Fatalf("step %d: cloud attachment without datacenter", step)
					}
				}
				for _, b := range p.Backups {
					if b == p.Attached.SN {
						t.Fatalf("step %d: serving supernode in backups", step)
					}
				}
			} else if p.Attached.Served() {
				t.Fatalf("step %d: offline player %d still attached", step, p.ID)
			}
		}
		for _, sn := range fog.Supernodes() {
			if sn.Load() > sn.Capacity {
				t.Fatalf("step %d: supernode %d load %d exceeds capacity %d",
					step, sn.ID, sn.Load(), sn.Capacity)
			}
			if sn.Load() != attachedCount[sn.ID] {
				t.Fatalf("step %d: supernode %d load %d but %d players point at it",
					step, sn.ID, sn.Load(), attachedCount[sn.ID])
			}
		}
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // join a random offline player
			p := players[rng.Intn(nPlayers)]
			if !p.Online {
				fog.Join(p)
			}
		case op < 8: // leave a random online player
			p := players[rng.Intn(nPlayers)]
			if p.Online {
				fog.Leave(p)
			}
		case op < 9: // a random supernode departs gracefully
			sns := fog.Supernodes()
			if len(sns) > 0 {
				sn := sns[rng.Intn(len(sns))]
				delete(registered, sn.ID)
				fog.DeregisterSupernode(sn.ID)
			}
		default: // a departed supernode returns as a fresh machine
			for _, spec := range specs {
				if _, live := registered[spec.ID]; !live {
					fresh := NewSupernode(spec.ID, spec.Pos, spec.Capacity, spec.Uplink)
					if err := fog.RegisterSupernode(fresh); err != nil {
						t.Fatalf("step %d: re-register: %v", step, err)
					}
					registered[spec.ID] = fresh
					break
				}
			}
		}
		if step%50 == 0 {
			check(step)
		}
	}
	check(steps)
}

// TestFlowLatencyMonotoneInBitrate: a higher encoding bitrate can never
// reduce the flow latency (transmission grows with segment size).
func TestFlowLatencyMonotoneInBitrate(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 5)
	p := testPlayer(500, cfg.Region.Center(), mustGame(t, 5))
	f.Join(p)
	var prev time.Duration
	for lvl := 1; lvl <= 5; lvl++ {
		q := game.MustLevelAt(lvl)
		l := FlowLatencyAt(cfg, p, q.Bitrate)
		if lvl > 1 && l < prev {
			t.Fatalf("latency decreased when bitrate rose: L%d=%v < L%d=%v", lvl, l, lvl-1, prev)
		}
		prev = l
	}
}

// TestAdaptedFlowLatencyNeverWorse: the adaptation proxy never yields a
// higher latency than the unadapted flow.
func TestAdaptedFlowLatencyNeverWorse(t *testing.T) {
	cfg := testConfig()
	f := buildTestFog(t, cfg, 5)
	rng := sim.NewRand(9)
	placer := geo.DefaultUSPlacer()
	for i := 0; i < 200; i++ {
		g, _ := game.ByID(1 + rng.Intn(5))
		p := testPlayer(600+int64(i), placer.Place(rng), g)
		f.Join(p)
		if a, b := AdaptedFlowLatency(cfg, p), FlowLatency(cfg, p); a > b {
			t.Fatalf("adapted latency %v > unadapted %v for game %d", a, b, g.ID)
		}
		f.Leave(p)
	}
}
