package core

import (
	"fmt"
	"testing"

	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

// stormInvariants checks the fog's structural invariants after each storm
// step: every online player is served, no player is served by a departed
// supernode, and no player's serving supernode also appears in its backup
// list.
func stormInvariants(t *testing.T, f *Fog, players []*Player) {
	t.Helper()
	for _, p := range players {
		if !p.Online {
			if p.Attached.Served() {
				t.Fatalf("offline player %d still attached", p.ID)
			}
			continue
		}
		if !p.Attached.Served() {
			t.Fatalf("online player %d unserved after synchronous failover", p.ID)
		}
		if p.Attached.Kind != AttachSupernode {
			continue
		}
		sn := p.Attached.SN
		live, ok := f.Supernode(sn.ID)
		if !ok || live != sn {
			t.Fatalf("player %d served by departed supernode %d", p.ID, sn.ID)
		}
		for _, b := range p.Backups {
			if b == sn {
				t.Fatalf("player %d's serving supernode %d sits in its own backup list", p.ID, sn.ID)
			}
		}
	}
}

// runStorm drives one fog through a randomized Register/Deregister/Join/
// Leave storm, checking invariants after every step.
func runStorm(t *testing.T, seed int64, steps int) {
	cfg := testConfig()
	cfg.Latency = benignModel(cfg)
	f := buildTestFog(t, cfg, 30)
	center := cfg.Region.Center()
	g := mustGame(t, 5)

	players := make([]*Player, 150)
	for i := range players {
		pos := geo.Point{X: center.X + float64(i%40), Y: center.Y + float64(i%25)}
		players[i] = testPlayer(int64(10_000+i), pos, g)
		f.Join(players[i])
	}

	// Immutable supernode specs for respawning after a kill.
	type spec struct {
		pos      geo.Point
		capacity int
		uplink   int64
	}
	specs := make(map[int64]spec)
	ids := make([]int64, 0, 30)
	for _, sn := range f.Supernodes() {
		specs[sn.ID] = spec{pos: sn.Pos, capacity: sn.Capacity, uplink: sn.Uplink}
		ids = append(ids, sn.ID)
	}

	rng := sim.NewRand(seed)
	for step := 0; step < steps; step++ {
		switch rng.Intn(4) {
		case 0: // kill a supernode and repair every orphan
			id := ids[rng.Intn(len(ids))]
			if _, up := f.Supernode(id); !up {
				continue
			}
			for _, orphan := range f.FailSupernode(id) {
				f.Failover(orphan)
			}
		case 1: // respawn a downed supernode
			id := ids[rng.Intn(len(ids))]
			if _, up := f.Supernode(id); up {
				continue
			}
			sp := specs[id]
			if err := f.RegisterSupernode(NewSupernode(id, sp.pos, sp.capacity, sp.uplink)); err != nil {
				t.Fatal(err)
			}
		case 2: // a player leaves
			p := players[rng.Intn(len(players))]
			if p.Online {
				f.Leave(p)
			}
		case 3: // a player (re)joins
			p := players[rng.Intn(len(players))]
			if !p.Online {
				f.Join(p)
			}
		}
		stormInvariants(t, f, players)
	}
}

// TestRegisterDeregisterStorm hammers the fog with randomized supernode
// kills, re-registrations, and player churn, holding the failover
// invariants after every single step. Four storms run concurrently on
// independent fogs so the race detector sweeps the shared read-only state
// (trace model, game ladder, region) while each fog mutates.
func TestRegisterDeregisterStorm(t *testing.T) {
	for i := 0; i < 4; i++ {
		seed := int64(9000 + i*17)
		t.Run(fmt.Sprintf("storm-%d", i), func(t *testing.T) {
			t.Parallel()
			runStorm(t, seed, 600)
		})
	}
}
