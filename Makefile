GO ?= go

.PHONY: build test vet race bench bench-json bench-all chaos wire coord coord-drain replay record-corpus verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector with shuffled test
# order; the parallel figure sweeps must stay clean here and no test may
# depend on package-level ordering.
race:
	$(GO) test -race -shuffle=on ./...

# bench runs the headline benchmarks (engine, QoE node with and without
# observability, Fig 9-11 sweeps) and writes them machine-readably so perf
# PRs commit their before/after numbers.
bench:
	$(GO) run ./cmd/cloudfog-bench

# bench-json records this PR's numbers as BENCH_PR9.json (same schema as
# BENCH_PR8.json, plus the flight-recorder benches) and prints the
# recorded-vs-live comparison against the previous PR's file.
bench-json:
	$(GO) run ./cmd/cloudfog-bench -out BENCH_PR9.json -baseline BENCH_PR8.json

# bench-all runs the full per-figure benchmark suite.
bench-all:
	$(GO) test -run XXX -bench . -benchmem .

# chaos is the resilience smoke: the fault and health suites under the
# race detector, a seeded chaos sim whose -report reconciles both the
# segment ledger and the fault orphan ledger, and the figdetect sweep
# whose -report additionally reconciles the heartbeat detection ledger
# (each run fails if any ledger is unbalanced).
chaos:
	$(GO) test -race -count=1 ./internal/fault/ ./internal/health/
	$(GO) run ./cmd/cloudfog-sim -figures figchurn,figrecovery \
		-faults examples/chaos/profile.json \
		-players 1500 -supernodes 100 -horizon 5s \
		-report chaos_report.json
	$(GO) run ./cmd/cloudfog-sim -figures figdetect \
		-players 1500 -supernodes 100 \
		-report detect_report.json
	$(GO) run -race ./cmd/cloudfog-sim -scale \
		-players 1500 -supernodes 100 -shards 4 \
		-horizon 30s -epoch 10s -detector phi -overload

# wire is the zero-copy wire-path smoke: the live and proto suites under
# the race detector, a saturation run that fails unless the coalescing
# counters prove frames were actually batched, and a UDP-transport live run
# whose detector ledgers must reconcile.
wire:
	$(GO) test -race -count=1 ./internal/live/ ./internal/proto/
	$(GO) run ./cmd/cloudfog-bench -wire-smoke
	$(GO) run ./cmd/cloudfog-live -players 4 -supernodes 3 -duration 5s \
		-transport udp -detector phi -heartbeat 200ms -chaos default

# replay is the flight-recorder regression gate: the committed corpus
# recordings must replay bit-identically (figure bytes, observability
# deltas, RNG draw counts) with balanced ledgers, the chaos recording
# must also verify from its figrecovery checkpoint alone, and the canonical
# counterfactual — swapping the chaos incident's timeout detector for
# phi-accrual — must produce a non-empty, ledger-reconciled QoE diff.
# Any byte or ledger divergence fails the target.
replay:
	$(GO) test -race -count=1 ./internal/flight/
	$(GO) run -race ./cmd/cloudfog-replay examples/flight/chaos.flight
	$(GO) run -race ./cmd/cloudfog-replay examples/flight/sharded.flight
	$(GO) run -race ./cmd/cloudfog-replay -from figrecovery examples/flight/chaos.flight
	$(GO) run -race ./cmd/cloudfog-replay -whatif detector=phi -expect-diff \
		examples/flight/chaos.flight

# record-corpus regenerates the committed corpus recordings. Run it only
# when an intentional determinism-contract change invalidates them — the
# diff then shows exactly which figures moved.
record-corpus:
	$(GO) run ./cmd/cloudfog-sim -figures figchurn,figrecovery \
		-players 400 -supernodes 25 -datacenters 3 -horizon 60s \
		-detector timeout -overload -breaker \
		-faults examples/flight/profile.json \
		-record examples/flight/chaos.flight
	$(GO) run ./cmd/cloudfog-sim -figures figscale \
		-players 400 -supernodes 25 -datacenters 3 -horizon 90s \
		-shards 4 -detector phi -overload \
		-record examples/flight/sharded.flight

# coord is the control-plane smoke: the coordinator suite (placement,
# churn property test, and the multi-process kill test) under the race
# detector, then the one-process churn demo — cloud, coordinator, three
# workers, six players, one worker killed mid-stream — which fails unless
# every stranded session re-places and the session ledger reconciles.
coord:
	$(GO) test -race -count=1 ./internal/coord/
	$(GO) run ./cmd/cloudfog-coordinator -demo -workers 3 -players 6 \
		-duration 4s -report coord_report.json

# coord-drain is the graceful-distress smoke: the same deployment with
# ticket leases on, but the victim worker is SIGTERM-drained instead of
# killed. The run fails unless the drain completes within the detector
# Bound(), every drained session hands off make-before-break (zero
# visible stream interruptions), and the extended session ledger —
# placements = active + departed + expired, tickets = placements +
# replacements + renewals — reconciles.
coord-drain:
	$(GO) run ./cmd/cloudfog-coordinator -demo -drain -lease 1s \
		-workers 3 -players 6 -duration 4s -report coord_drain_report.json

# verify is the CI gate: static checks, the race-enabled suite, the chaos
# smoke, the wire smoke, the coordinator smokes (kill and drain), and the
# flight-recorder replay gate.
verify: vet race chaos wire coord coord-drain replay
