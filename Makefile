GO ?= go

.PHONY: build test vet race bench bench-json bench-all verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; the parallel figure
# sweeps must stay clean here.
race:
	$(GO) test -race ./...

# bench runs the headline benchmarks (engine, QoE node with and without
# observability, Fig 9-11 sweeps) and writes them machine-readably so perf
# PRs commit their before/after numbers.
bench:
	$(GO) run ./cmd/cloudfog-bench

# bench-json records this PR's numbers as BENCH_PR3.json (same schema as
# BENCH_PR2.json) and prints the recorded-vs-live comparison against it.
bench-json:
	$(GO) run ./cmd/cloudfog-bench -out BENCH_PR3.json -baseline BENCH_PR2.json

# bench-all runs the full per-figure benchmark suite.
bench-all:
	$(GO) test -run XXX -bench . -benchmem .

# verify is the CI gate: static checks plus the race-enabled suite.
verify: vet race
