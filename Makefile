GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; the parallel figure
# sweeps must stay clean here.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench . -benchmem .

# verify is the CI gate: static checks plus the race-enabled suite.
verify: vet race
