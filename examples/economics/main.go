// Economics: exercise CloudFog's incentive and provisioning model (paper
// §III-A, Eqs. 1-6). First the contributor's side: at what reward rate c_s
// does contributing a machine become profitable? Then the provider's side:
// which candidate supernodes should be deployed to support a target player
// count at maximum saving, and when is one more supernode worth it (Eq. 6)?
package main

import (
	"fmt"

	"cloudfog/internal/econ"
	"cloudfog/internal/sim"
)

func main() {
	// Market constants: bandwidth in Mbit/s units. A player stream costs
	// R = 1.3 units (1.2 Mbps video + overhead); cloud updates cost
	// Λ = 0.05 units per supernode; a saved cloud unit is worth
	// c_c = 1.0.
	params := econ.Params{
		RewardPerUnit:  0.25,
		RevenuePerUnit: 1.0,
		StreamRate:     1.3,
		UpdateRate:     0.05,
	}
	if err := params.Validate(); err != nil {
		panic(err)
	}

	// A population of candidate supernodes with Pareto capacities and
	// heterogeneous running costs.
	rng := sim.NewRand(7)
	candidates := make([]econ.Supernode, 40)
	for i := range candidates {
		capacity := rng.CapacityPareto() * 1.3 // uplink units: capacity slots × R
		candidates[i] = econ.Supernode{
			Capacity:     capacity,
			Utilization:  0.6 + 0.4*rng.Float64(),
			Cost:         0.5 + rng.Float64(),
			CoverageGain: 1 + rng.Intn(8),
		}
	}

	fmt.Println("== contributor incentives (Eq. 1) ==")
	for _, cs := range []float64{0.05, 0.15, 0.25, 0.40} {
		willing := 0
		for _, c := range candidates {
			if econ.WillContribute(cs, c, 0) {
				willing++
			}
		}
		fmt.Printf("  reward c_s=%.2f per unit: %2d/%d owners profit from contributing\n",
			cs, willing, len(candidates))
	}

	fmt.Println("\n== provider planning (Eqs. 2-5) ==")
	for _, target := range []int{20, 50, 80} {
		plan, err := params.PlanDeployment(target, candidates)
		if err != nil {
			fmt.Printf("  target %3d players: %v\n", target, err)
			continue
		}
		fmt.Printf("  target %3d players: deploy %2d supernodes, support %3d, saving C_g=%.1f units\n",
			target, len(plan.Chosen), plan.Supported, plan.Saving)
	}

	fmt.Println("\n== marginal deployment decisions (Eq. 6) ==")
	for _, c := range candidates[:6] {
		gain := params.MarginalGain(c)
		verdict := "skip"
		if params.WorthDeploying(c) {
			verdict = "deploy"
		}
		fmt.Printf("  candidate: capacity %4.1f units, covers %d new players -> G_s=%+6.2f  %s\n",
			c.Capacity, c.CoverageGain, gain, verdict)
	}

	fmt.Println("\n== bandwidth ledger (Eq. 2) ==")
	n, m := 60, 12
	fmt.Printf("  serving %d players via %d supernodes saves B_r = %.1f units of cloud egress\n",
		n, m, params.BandwidthReduction(n, m))
}
