// Scheduling: walk the deadline-driven sender buffer (paper §III-C,
// Figure 4). A supernode with a slow uplink queues segments from games
// with different deadlines and loss tolerances: EDF ordering puts tight
// deadlines first, and when a segment's estimated response latency
// (Eq. 12) exceeds its requirement, packets are dropped across the queue
// proportionally to loss tolerance × waiting-time decay (Eq. 14).
package main

import (
	"fmt"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/sched"
	"cloudfog/internal/stream"
)

func main() {
	streamCfg := stream.Config{SegmentDuration: 100 * time.Millisecond, PacketSize: 1500}
	cfg := sched.DefaultConfig()
	cfg.MaxQueueDelay = 0 // let the demo build visible pressure
	// 3 Mbps uplink: a level-5 segment (22,500 B) takes 60 ms to send.
	buf := sched.NewBuffer(cfg, streamCfg, 3_000_000)

	fmt.Println("== EDF ordering ==")
	games := []int{5, 3, 1, 4, 2}
	var segs []*stream.Segment
	for i, id := range games {
		g, err := game.ByID(id)
		if err != nil {
			panic(err)
		}
		enc := stream.NewEncoder(streamCfg, int64(i), g.Quality())
		seg := enc.Encode(0, 0, g)
		segs = append(segs, seg)
		buf.Enqueue(0, seg)
		fmt.Printf("  enqueued %-10s segment: deadline t_a=%-6v loss tolerance %.2f, %2d packets\n",
			g.Name, seg.ExpectedArrival(), seg.LossTolerance, seg.Packets)
	}
	fmt.Println("\n  transmission order (earliest deadline first):")
	order := []*stream.Segment{}
	for {
		seg := buf.Dequeue(0)
		if seg == nil {
			break
		}
		order = append(order, seg)
		g, _ := game.ByID(gameOf(seg))
		fmt.Printf("    -> %-10s (t_a=%v, %d of %d packets survive)\n",
			g.Name, seg.ExpectedArrival(), seg.RemainingPackets(), seg.Packets)
	}

	fmt.Println("\n== Eq. 14 drop allocation (Figure 4's worked example) ==")
	// Six packets must go; tolerances (0.6, 0.2, 0.5) with decay factors
	// (0.5, 1.0, 0.2) split them 3 / 2 / 1.
	weights := []float64{0.6 * 0.5, 0.2 * 1.0, 0.5 * 0.2}
	budgets := []int{10, 10, 10}
	alloc := sched.AllocateDrops(weights, budgets, 6)
	for k, d := range alloc {
		fmt.Printf("  segment %d: weight %.2f -> drop %d packets\n", k+1, weights[k], d)
	}

	fmt.Println("\n== deadline pressure on a congested uplink ==")
	buf2 := sched.NewBuffer(cfg, streamCfg, 3_000_000)
	now := time.Duration(0)
	for i := 0; i < 8; i++ {
		g, _ := game.ByID(i%5 + 1)
		enc := stream.NewEncoder(streamCfg, int64(100+i), g.Quality())
		buf2.Enqueue(now, enc.Encode(now, now, g))
		now += 10 * time.Millisecond
	}
	enq, sent, dropped, fully, repairs := buf2.Stats()
	fmt.Printf("  %d segments enqueued, %d deadline repairs ran, %d packets dropped (%d segments fully)\n",
		enq, repairs, dropped, fully)
	fmt.Printf("  queue now holds %d bytes (%.0f ms at 3 Mbps)\n",
		buf2.QueuedBytes(), float64(buf2.QueuedBytes()*8)/3_000_000*1000)
	_ = sent
	_ = segs
	_ = order
}

// gameOf recovers the game id from a segment's latency requirement.
func gameOf(seg *stream.Segment) int {
	for _, g := range game.Games() {
		if g.NetworkBudget() == seg.LatencyReq {
			return g.ID
		}
	}
	return 0
}
