// Quickstart: build a small CloudFog deployment, join players through the
// supernode assignment protocol, and inspect what the fog buys them —
// serving attachments, response latencies, cloud bandwidth, and graceful
// failover when a supernode leaves.
package main

import (
	"fmt"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/sim"
)

func main() {
	// Infrastructure: two datacenters and eight supernodes around two
	// metro areas on a US-scale plane.
	cfg := core.DefaultConfig(42)
	region := cfg.Region
	dcs := []*core.Datacenter{
		core.NewDatacenter(2_000_000, geo.Point{X: 1200, Y: 1800}, cfg.DCEgress),
		core.NewDatacenter(2_000_001, geo.Point{X: 3400, Y: 1400}, cfg.DCEgress),
	}
	// A dozen supernodes per metro: players probe several candidates and
	// keep the fastest, so a denser fog means better odds of a short path.
	var sns []*core.Supernode
	for i := 0; i < 24; i++ {
		metro := geo.Point{X: 900, Y: 1100} // west metro
		if i >= 12 {
			metro = geo.Point{X: 4100, Y: 2100} // east metro
		}
		pos := region.Clamp(geo.Point{X: metro.X + float64(i%12)*30, Y: metro.Y + 25})
		sns = append(sns, core.NewSupernode(1_000_000+int64(i), pos, 5, 5*cfg.UplinkPerSlot))
	}

	fog, err := core.BuildFog(cfg, dcs, sns, sim.NewRand(7))
	if err != nil {
		panic(err)
	}
	fmt.Printf("deployment: %d datacenters, %d supernodes\n\n", len(dcs), len(sns))

	// Players near each metro, playing different game genres.
	games := game.Games()
	var players []*core.Player
	for i := 0; i < 6; i++ {
		metro := geo.Point{X: 950, Y: 1150}
		if i >= 3 {
			metro = geo.Point{X: 4050, Y: 2050}
		}
		p := &core.Player{
			ID:       int64(i),
			Pos:      region.Clamp(geo.Point{X: metro.X + float64(i)*30, Y: metro.Y}),
			Game:     games[i%len(games)],
			Downlink: 20_000_000,
		}
		players = append(players, p)
	}

	fmt.Println("joining players:")
	for _, p := range players {
		a := fog.Join(p)
		latency := fog.NetworkLatency(p) + game.PlayoutDelay
		serving := "cloud (no qualified supernode)"
		if a.Kind == core.AttachSupernode {
			serving = fmt.Sprintf("supernode %d (stream %v + update %v)",
				a.SN.ID, a.StreamLatency.Round(time.Millisecond), a.UpdateLatency.Round(time.Millisecond))
		}
		ok := "MISSES"
		if latency <= p.Game.ResponseRequirement() {
			ok = "meets"
		}
		fmt.Printf("  player %d (%-10s req %3dms): %-55s response %v — %s requirement\n",
			p.ID, p.Game.Name, p.Game.ResponseRequirement().Milliseconds(),
			serving, latency.Round(time.Millisecond), ok)
	}

	fmt.Printf("\ncloud egress with fog: %.1f Mbit/s", float64(fog.CloudBandwidth())/1e6)
	var direct int64
	for _, p := range players {
		direct += cfg.WireRate(p.Game.Quality().Bitrate)
	}
	fmt.Printf(" (pure cloud streaming would cost %.1f Mbit/s)\n\n", float64(direct)/1e6)

	// A supernode leaves gracefully: its players fail over to backups.
	var leaving *core.Supernode
	for _, p := range players {
		if p.Attached.Kind == core.AttachSupernode {
			leaving = p.Attached.SN
			break
		}
	}
	if leaving != nil {
		fmt.Printf("supernode %d notifies the cloud and leaves (%d players served)\n",
			leaving.ID, leaving.Load())
		fog.DeregisterSupernode(leaving.ID)
		for _, p := range players {
			if !p.Attached.Served() {
				fmt.Printf("  player %d left unserved!\n", p.ID)
				continue
			}
		}
		fmt.Println("  every player still served after failover")
	}
}
