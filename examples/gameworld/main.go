// Gameworld: walk the MMOG substrate underneath CloudFog — the cloud's
// authoritative virtual world, the update deltas it ships to supernodes,
// the supernode replica that renders per-player views, and the kd-tree
// region partitioning that balances the world across datacenters.
package main

import (
	"fmt"

	"cloudfog/internal/proto"
	"cloudfog/internal/sim"
	"cloudfog/internal/world"
)

func main() {
	cfg := world.DefaultConfig()
	w := world.New(cfg)
	rng := sim.NewRand(7)

	// Populate: 200 avatars clustered in two battlegrounds, 100 objects.
	fmt.Println("== populate the virtual world ==")
	for i := int64(1); i <= 200; i++ {
		hot := world.Vec2{X: 2000, Y: 2000}
		if i%2 == 0 {
			hot = world.Vec2{X: 7500, Y: 6500}
		}
		pos := world.Vec2{X: hot.X + rng.NormFloat64()*600, Y: hot.Y + rng.NormFloat64()*600}
		if _, err := w.SpawnAvatar(i, pos); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 100; i++ {
		w.SpawnObject(world.Vec2{X: rng.Float64() * 10000, Y: rng.Float64() * 10000})
	}
	fmt.Printf("world: %d entities at version %d\n\n", w.Len(), w.Version())

	// A supernode comes up: snapshot, then incremental deltas.
	fmt.Println("== supernode replica synchronization ==")
	replica := world.NewReplica()
	snap := w.Snapshot()
	replica.Apply(snap)
	fmt.Printf("snapshot: %d entities, %d bytes on the wire\n",
		len(snap.Updated), len(proto.MarshalDelta(snap)))

	// The cloud ticks: players act, world steps, deltas flow.
	var updateBytes int
	for tick := 0; tick < 30; tick++ {
		var actions []world.Action
		for i := 0; i < 10; i++ {
			p := int64(1 + rng.Intn(200))
			actions = append(actions, world.Action{
				Player: p, Kind: world.ActionMove,
				Target: world.Vec2{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			})
		}
		w.Apply(actions)
		w.Step(1.0 / 30)
		d := w.DeltaSince(replica.Version())
		updateBytes += len(proto.MarshalDelta(d))
		if err := replica.Apply(d); err != nil {
			panic(err)
		}
	}
	fmt.Printf("30 ticks of updates: %d bytes total (%.1f kbit/s at 30 fps) — the Λ the economics charge\n\n",
		updateBytes, float64(updateBytes)*8*30/30/1000)

	// Render a player's view from the replica.
	fmt.Println("== per-player view rendering ==")
	av, _ := replica.Get(1)
	visible := replica.Visible(world.Viewport{Center: av.Pos, Radius: 800})
	fmt.Printf("player 1 sees %d of %d entities; render cost %.2f units at 640x480 vs %.2f at 1280x720\n\n",
		len(visible), replica.Len(),
		world.RenderCost(len(visible), 640, 480), world.RenderCost(len(visible), 1280, 720))

	// Partition the world across datacenters.
	fmt.Println("== kd-tree region partitioning across 4 datacenters ==")
	var avatars []world.Vec2
	for i := int64(1); i <= 200; i++ {
		if a := w.Avatar(i); a != nil {
			avatars = append(avatars, a.Pos)
		}
	}
	regions := world.PartitionKD(w.Bounds(), avatars, 3)
	assign := world.AssignRegions(regions, 4)
	for i, r := range regions {
		fmt.Printf("  region %d: [%5.0f,%5.0f)x[%5.0f,%5.0f) %3d avatars -> datacenter %d\n",
			i, r.Bounds.Min.X, r.Bounds.Max.X, r.Bounds.Min.Y, r.Bounds.Max.Y, r.Avatars, assign[i])
	}
	fmt.Printf("server load imbalance: %.3f (1.0 = perfect)\n",
		world.LoadImbalance(regions, assign, 4))
}
