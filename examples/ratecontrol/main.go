// Ratecontrol: walk the receiver-driven encoding rate adaptation (paper
// §III-B, Figure 3) through a congestion episode. A level-4 (1200 kbps)
// live stream loses bandwidth, the receiver's buffer occupancy r falls
// below θ/ρ for h₂ consecutive calculations, and the controller steps the
// encoder down the ladder; after the network recovers, sustained headroom
// (r above (1+β)/ρ for h₁ calculations) walks the quality back up.
package main

import (
	"fmt"
	"time"

	"cloudfog/internal/adapt"
	"cloudfog/internal/game"
)

func main() {
	g, err := game.ByID(4) // mmorpg: 90 ms budget, starts at 1200 kbps
	if err != nil {
		panic(err)
	}
	cfg := adapt.DefaultConfig()
	cfg.UpStreak = 30 // a short demo: 3 s of sustained headroom to go up
	ctrl := adapt.NewController(cfg, g)

	fmt.Printf("game: %s (network budget %v, rho %.1f)\n", g.Name, g.NetworkBudget(), g.RhoLatency)
	fmt.Printf("thresholds: adjust down below r=%.2f, adjust up above r=%.2f\n\n",
		ctrl.DownThreshold(), ctrl.UpThreshold())

	// Available network bandwidth over time: healthy, congested, recovered.
	bandwidth := func(now time.Duration) (string, float64) {
		switch {
		case now < 4*time.Second:
			return "healthy", 1_500_000
		case now < 12*time.Second:
			return "congested", 600_000
		default:
			return "recovered", 2_000_000
		}
	}

	// A live stream: the encoder emits bitrate bytes/s into the sender
	// queue; the network forwards at most the available bandwidth; the
	// player consumes at the playback rate.
	const tick = 100 * time.Millisecond
	dt := tick.Seconds()
	segBytes := func() float64 { return float64(ctrl.Level().Bitrate) / 30 / 8 }
	senderQ := 0.0
	rxBuf := 2 * segBytes() // two-segment startup buffer

	fmt.Println("time     phase       bw(kbps)  level  r      event")
	lastLevel := ctrl.Level().Level
	for now := tick; now <= 22*time.Second; now += tick {
		phase, bw := bandwidth(now)
		bitrate := float64(ctrl.Level().Bitrate)

		senderQ += bitrate / 8 * dt
		sent := bw / 8 * dt
		if sent > senderQ {
			sent = senderQ
		}
		senderQ -= sent
		rxBuf += sent
		play := bitrate / 8 * dt
		if play > rxBuf {
			play = rxBuf // playback stalls on an empty buffer
		}
		rxBuf -= play

		r := rxBuf / segBytes()
		decision := ctrl.Observe(r)
		switch {
		case decision != adapt.Hold:
			fmt.Printf("%-8v %-11s %6.0f    L%d     %5.2f  %s -> %d kbps\n",
				now, phase, bw/1000, ctrl.Level().Level, r, decision, ctrl.Level().Bitrate/1000)
			lastLevel = ctrl.Level().Level
		case now%(2*time.Second) == 0:
			fmt.Printf("%-8v %-11s %6.0f    L%d     %5.2f  hold\n",
				now, phase, bw/1000, ctrl.Level().Level, r)
		}
		_ = lastLevel
	}

	up, down := ctrl.Adjustments()
	fmt.Printf("\ntotal adjustments: %d down, %d up (final level L%d @ %d kbps)\n",
		down, up, ctrl.Level().Level, ctrl.Level().Bitrate/1000)
}
