// Per-figure regeneration benchmarks. Each BenchmarkFigXX runs the
// experiment behind one figure or table of the CloudFog paper's evaluation
// at a reduced scale (so `go test -bench=.` completes in minutes) and
// reports the figure's headline quantity via b.ReportMetric, giving a
// recorded shape check alongside the timing. cmd/cloudfog-sim and
// cmd/cloudfog-testbed print the full-scale tables.
package cloudfog_test

import (
	"sync"
	"testing"
	"time"

	"cloudfog/internal/adapt"
	"cloudfog/internal/coop"
	"cloudfog/internal/core"
	"cloudfog/internal/econ"
	"cloudfog/internal/experiment"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/metrics"
	"cloudfog/internal/proto"
	"cloudfog/internal/qoe"
	"cloudfog/internal/sched"
	"cloudfog/internal/sim"
	"cloudfog/internal/testbed"
	"cloudfog/internal/trace"
	"cloudfog/internal/workload"
	"cloudfog/internal/world"
)

// benchWorld is shared across benchmarks: 2,500 players, 200 supernodes,
// 20 edge servers — the paper's proportions at a quarter scale.
var (
	worldOnce sync.Once
	benchW    *experiment.World
)

func simWorld(b *testing.B) *experiment.World {
	b.Helper()
	worldOnce.Do(func() {
		cfg := experiment.Default(2026)
		cfg.Players = 2500
		cfg.Supernodes = 200
		cfg.EdgeServers = 20
		w, err := experiment.NewWorld(cfg)
		if err != nil {
			panic(err)
		}
		benchW = w
	})
	return benchW
}

// paperWorld is the full paper-scale world — 10,000 players, 600
// supernodes — for the assignment-path benchmarks whose acceptance bar is
// set at that scale.
var (
	paperOnce sync.Once
	paperW    *experiment.World
)

func paperWorld(b *testing.B) *experiment.World {
	b.Helper()
	paperOnce.Do(func() {
		w, err := experiment.NewWorld(experiment.Default(2027))
		if err != nil {
			panic(err)
		}
		paperW = w
	})
	return paperW
}

func benchReqs() []time.Duration {
	return []time.Duration{30 * time.Millisecond, 70 * time.Millisecond, 110 * time.Millisecond}
}

func seriesAt(s metrics.Series, x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return -1
}

// BenchmarkFig2QualityLadder pins the Figure 2 table lookups the whole
// system builds on.
func BenchmarkFig2QualityLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for req := 30 * time.Millisecond; req <= 110*time.Millisecond; req += 20 * time.Millisecond {
			q := game.HighestLevelWithin(req)
			if q.Level < 1 {
				b.Fatal("ladder lookup failed")
			}
		}
	}
	b.ReportMetric(game.AdjustUpFactor(), "beta")
}

// BenchmarkFig3RateAdaptation drives the §III-B controller through the
// congestion episode of Figure 3.
func BenchmarkFig3RateAdaptation(b *testing.B) {
	g, _ := game.ByID(4)
	downs := 0
	for i := 0; i < b.N; i++ {
		ctrl := adapt.NewController(adapt.DefaultConfig(), g)
		for t := 0; t < 200; t++ {
			r := 2.0
			if t > 50 && t < 120 {
				r = 0.1 // congestion
			}
			if ctrl.Observe(r) == adapt.AdjustedDown {
				downs++
			}
		}
	}
	b.ReportMetric(float64(downs)/float64(b.N), "downs/run")
}

// BenchmarkFig4DropAllocation runs Eq. 14's allocation on Figure 4's
// worked example.
func BenchmarkFig4DropAllocation(b *testing.B) {
	weights := []float64{0.6 * 0.5, 0.2 * 1.0, 0.5 * 0.2}
	budgets := []int{10, 10, 10}
	var alloc []int
	for i := 0; i < b.N; i++ {
		alloc = sched.AllocateDrops(weights, budgets, 6)
	}
	b.ReportMetric(float64(alloc[0]), "d1")
	b.ReportMetric(float64(alloc[1]), "d2")
	b.ReportMetric(float64(alloc[2]), "d3")
}

func BenchmarkFig5aCoverageVsDatacenters(b *testing.B) {
	w := simWorld(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.CoverageVsDatacenters(w, []int{1, 5, 25}, benchReqs())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[len(series)-1], 5), "coverage@5dc/110ms")
	b.ReportMetric(seriesAt(series[len(series)-1], 25), "coverage@25dc/110ms")
}

func BenchmarkFig5bCoverageVsSupernodes(b *testing.B) {
	w := simWorld(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.CoverageVsSupernodes(w, []int{0, 100, 200}, benchReqs())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[len(series)-1], 0), "coverage@0sn/110ms")
	b.ReportMetric(seriesAt(series[len(series)-1], 200), "coverage@200sn/110ms")
}

// testbedWorld builds a small live-TCP world for the Figure 6-8(b) benches.
func testbedWorld(b *testing.B) (*experiment.World, *testbed.Cluster) {
	b.Helper()
	cfg := experiment.Default(99)
	cfg.Players = 120
	cfg.Supernodes = 8
	cfg.EdgeServers = 4
	cfg.Datacenters = 2
	w, err := experiment.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	model := cfg.Core.Latency.(trace.Model)
	cluster, err := testbed.Start(model, w.Endpoints())
	if err != nil {
		b.Fatal(err)
	}
	cluster.Prewarm(w.ProbePairs(cfg.Core.Candidates*2), 256)
	w.UseLatencySource(cluster)
	return w, cluster
}

func BenchmarkFig6aTestbedCoverageDatacenters(b *testing.B) {
	w, cluster := testbedWorld(b)
	defer cluster.Close()
	b.ResetTimer()
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.CoverageVsDatacenters(w, []int{1, 2, 8}, benchReqs())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[len(series)-1], 2), "coverage@2dc/110ms")
}

func BenchmarkFig6bTestbedCoverageSupernodes(b *testing.B) {
	w, cluster := testbedWorld(b)
	defer cluster.Close()
	b.ResetTimer()
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.CoverageVsSupernodes(w, []int{0, 8}, benchReqs())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[len(series)-1], 8), "coverage@8sn/110ms")
}

func BenchmarkFig7aBandwidthSim(b *testing.B) {
	w := simWorld(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.BandwidthVsPlayers(w, []int{1250, 2500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[0], 2500), "cloud-mbps@2500")
	b.ReportMetric(seriesAt(series[2], 2500), "cloudfog-mbps@2500")
}

func BenchmarkFig7bBandwidthTestbed(b *testing.B) {
	w, cluster := testbedWorld(b)
	defer cluster.Close()
	b.ResetTimer()
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.BandwidthVsPlayers(w, []int{120})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[0], 120), "cloud-mbps@120")
	b.ReportMetric(seriesAt(series[2], 120), "cloudfog-mbps@120")
}

func BenchmarkFig8aLatencySim(b *testing.B) {
	w := simWorld(b)
	var results []experiment.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiment.ResponseLatency(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(float64(r.Mean.Milliseconds()), r.System+"-ms")
	}
}

func BenchmarkFig8bLatencyTestbed(b *testing.B) {
	w, cluster := testbedWorld(b)
	defer cluster.Close()
	b.ResetTimer()
	var results []experiment.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiment.ResponseLatency(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(float64(r.Mean.Milliseconds()), r.System+"-ms")
	}
}

func BenchmarkFig9aContinuitySim(b *testing.B) {
	w := simWorld(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.ContinuityVsPlayers(w, []int{400}, 8*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		b.ReportMetric(seriesAt(s, 400), s.Label+"@400")
	}
}

func BenchmarkFig9bContinuityTestbed(b *testing.B) {
	w, cluster := testbedWorld(b)
	defer cluster.Close()
	b.ResetTimer()
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.ContinuityVsPlayers(w, []int{120}, 8*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		b.ReportMetric(seriesAt(s, 120), s.Label+"@120")
	}
}

func BenchmarkFig10aAdaptationSim(b *testing.B) {
	w := simWorld(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.AdaptationEffect(w, []int{5, 30}, 40*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[0], 30), "basic@30")
	b.ReportMetric(seriesAt(series[1], 30), "adapt@30")
}

func BenchmarkFig10bAdaptationTestbed(b *testing.B) {
	w, cluster := testbedWorld(b)
	defer cluster.Close()
	b.ResetTimer()
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.AdaptationEffect(w, []int{5, 30}, 40*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[0], 30), "basic@30")
	b.ReportMetric(seriesAt(series[1], 30), "adapt@30")
}

func BenchmarkFig11aSchedulingSim(b *testing.B) {
	w := simWorld(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.SchedulingEffect(w, []int{5, 30}, 40*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[0], 30), "basic@30")
	b.ReportMetric(seriesAt(series[1], 30), "sched@30")
}

func BenchmarkFig11bSchedulingTestbed(b *testing.B) {
	w, cluster := testbedWorld(b)
	defer cluster.Close()
	b.ResetTimer()
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.SchedulingEffect(w, []int{5, 30}, 40*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seriesAt(series[0], 30), "basic@30")
	b.ReportMetric(seriesAt(series[1], 30), "sched@30")
}

// BenchmarkEconPlanning exercises the §III-A economic model (Eqs. 1-6).
func BenchmarkEconPlanning(b *testing.B) {
	params := econ.Params{RewardPerUnit: 0.25, RevenuePerUnit: 1, StreamRate: 1.3, UpdateRate: 0.05}
	rng := sim.NewRand(3)
	candidates := make([]econ.Supernode, 200)
	for i := range candidates {
		candidates[i] = econ.Supernode{
			Capacity:     rng.CapacityPareto() * 1.3,
			Utilization:  0.5 + 0.5*rng.Float64(),
			Cost:         rng.Float64(),
			CoverageGain: 1 + rng.Intn(8),
		}
	}
	var saving float64
	for i := 0; i < b.N; i++ {
		plan, err := params.PlanDeployment(300, candidates)
		if err != nil {
			b.Fatal(err)
		}
		saving = plan.Saving
	}
	b.ReportMetric(saving, "saving")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md §5) ---

func ablationScenario(b *testing.B) (int64, []qoe.PlayerSpec) {
	b.Helper()
	return simWorld(b).SupernodeScenario(30)
}

// BenchmarkAblationFIFOvsEDF compares the sender queue disciplines under
// load: EDF ordering (with deadline drops off, isolating the ordering).
func BenchmarkAblationFIFOvsEDF(b *testing.B) {
	uplink, specs := ablationScenario(b)
	run := func(edf bool) float64 {
		opts := qoe.BasicOptions()
		opts.Sched.EDF = edf
		opts.Scheduling = edf // EDF without drops is not reachable via toggles; use full sched
		res, err := qoe.RunNode(opts, uplink, specs, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		return qoe.Summarize(res).SatisfiedFrac
	}
	var fifo, edf float64
	for i := 0; i < b.N; i++ {
		fifo = run(false)
		edf = run(true)
	}
	b.ReportMetric(fifo, "fifo-satisfied")
	b.ReportMetric(edf, "edf-satisfied")
}

// BenchmarkAblationDropPolicy compares Eq. 14's tolerance-weighted drops
// against uniform drops.
func BenchmarkAblationDropPolicy(b *testing.B) {
	uplink, specs := ablationScenario(b)
	run := func(uniform bool) float64 {
		opts := qoe.BasicOptions()
		opts.Scheduling = true
		opts.Sched.UniformDrop = uniform
		res, err := qoe.RunNode(opts, uplink, specs, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		return qoe.Summarize(res).SatisfiedFrac
	}
	var eq14, uniform float64
	for i := 0; i < b.N; i++ {
		eq14 = run(false)
		uniform = run(true)
	}
	b.ReportMetric(eq14, "eq14-satisfied")
	b.ReportMetric(uniform, "uniform-satisfied")
}

// BenchmarkAblationHysteresis sweeps the consecutive-estimation lengths
// h1/h2 of the adaptation controller.
func BenchmarkAblationHysteresis(b *testing.B) {
	uplink, specs := ablationScenario(b)
	run := func(h1, h2 int) float64 {
		opts := qoe.BasicOptions()
		opts.Adaptation = true
		opts.Adapt.UpStreak = h1
		opts.Adapt.DownStreak = h2
		res, err := qoe.RunNode(opts, uplink, specs, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		return qoe.Summarize(res).SatisfiedFrac
	}
	var paper, twitchy float64
	for i := 0; i < b.N; i++ {
		paper = run(100, 10) // paper defaults
		twitchy = run(3, 1)  // no hysteresis
	}
	b.ReportMetric(paper, "h100-10-satisfied")
	b.ReportMetric(twitchy, "h3-1-satisfied")
}

// BenchmarkAblationRho toggles the latency-tolerance scaling of the
// adaptation thresholds.
func BenchmarkAblationRho(b *testing.B) {
	uplink, specs := ablationScenario(b)
	run := func(useRho bool) float64 {
		opts := qoe.BasicOptions()
		opts.Adaptation = true
		opts.Adapt.UseRho = useRho
		res, err := qoe.RunNode(opts, uplink, specs, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		return qoe.Summarize(res).SatisfiedFrac
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with, "rho-satisfied")
	b.ReportMetric(without, "norho-satisfied")
}

// BenchmarkAblationGeoError sweeps the IP-geolocation error and reports its
// effect on fog coverage.
func BenchmarkAblationGeoError(b *testing.B) {
	w := simWorld(b)
	run := func(sigma float64) float64 {
		cfg := w.Cfg
		cfg.Core.Locator.ErrorSigma = sigma
		w2, err := experiment.NewWorld(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series, err := experiment.CoverageVsSupernodes(w2, []int{200}, []time.Duration{110 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		return seriesAt(series[0], 200)
	}
	var exact, noisy float64
	for i := 0; i < b.N; i++ {
		exact = run(0)
		noisy = run(300)
	}
	b.ReportMetric(exact, "coverage-exact")
	b.ReportMetric(noisy, "coverage-300km-err")
}

// BenchmarkAblationBackups measures supernode-departure failover with the
// recorded-backup fast path versus full reassignment.
func BenchmarkAblationBackups(b *testing.B) {
	cfg := core.DefaultConfig(5)
	region := cfg.Region
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dcs := []*core.Datacenter{core.NewDatacenter(2_000_000, region.Center(), cfg.DCEgress)}
		sns := make([]*core.Supernode, 40)
		for j := range sns {
			pos := region.Clamp(geo.Point{X: region.Center().X + float64(j*12), Y: region.Center().Y})
			sns[j] = core.NewSupernode(1_000_000+int64(j), pos, 5, 5*cfg.UplinkPerSlot)
		}
		fog, err := core.BuildFog(cfg, dcs, sns, sim.NewRand(6))
		if err != nil {
			b.Fatal(err)
		}
		g, _ := game.ByID(5)
		players := make([]*core.Player, 100)
		for j := range players {
			players[j] = &core.Player{
				ID:       int64(j),
				Pos:      region.Clamp(geo.Point{X: region.Center().X + float64(j*5), Y: region.Center().Y + 10}),
				Game:     g,
				Downlink: 20_000_000,
			}
			fog.Join(players[j])
		}
		b.StartTimer()
		for _, sn := range sns[:10] {
			fog.DeregisterSupernode(sn.ID)
		}
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkEngineEvents(b *testing.B) {
	engine := sim.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			engine.Schedule(time.Millisecond, tick)
		}
	}
	engine.Schedule(time.Millisecond, tick)
	b.ResetTimer()
	engine.Run()
}

func BenchmarkTraceOneWay(b *testing.B) {
	m := trace.DefaultModel(1)
	a := trace.Endpoint{ID: 1, Pos: geo.Point{X: 100, Y: 200}, Class: trace.ClassNode}
	c := trace.Endpoint{ID: 2, Pos: geo.Point{X: 3000, Y: 1500}, Class: trace.ClassDatacenter}
	var d time.Duration
	for i := 0; i < b.N; i++ {
		a.ID = trace.NodeID(i)
		d = m.OneWay(a, c)
	}
	_ = d
}

// BenchmarkAssignmentJoin measures one join/leave round trip of the
// assignment protocol against a paper-scale fog (600 supernodes).
func BenchmarkAssignmentJoin(b *testing.B) {
	w := paperWorld(b)
	fog, err := w.NewFog(w.Cfg.Datacenters, w.Cfg.Supernodes)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := game.ByID(4)
	players := w.Pop.Players
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := players[i%len(players)]
		p.Game = g
		fog.Join(p)
		fog.Leave(p)
	}
}

func BenchmarkAllocateDrops(b *testing.B) {
	weights := make([]float64, 64)
	budgets := make([]int, 64)
	for i := range weights {
		weights[i] = float64(i%5+1) / 10
		budgets[i] = i % 7
	}
	for i := 0; i < b.N; i++ {
		sched.AllocateDrops(weights, budgets, 50)
	}
}

func BenchmarkQoENode(b *testing.B) {
	g, _ := game.ByID(4)
	specs := make([]qoe.PlayerSpec, 10)
	for i := range specs {
		specs[i] = qoe.PlayerSpec{
			ID: int64(i), Game: g,
			Latency:      20 * time.Millisecond,
			InboundDelay: 20 * time.Millisecond,
		}
	}
	for i := 0; i < b.N; i++ {
		if _, err := qoe.RunNode(qoe.DefaultOptions(), 20_000_000, specs, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn drives the Poisson session arrival/departure process
// against a paper-scale fog (600 supernodes), so every arrival exercises
// the real shortlist-probe-attach path.
func BenchmarkChurn(b *testing.B) {
	w := paperWorld(b).Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fog, err := w.NewFog(w.Cfg.Datacenters, w.Cfg.Supernodes)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		engine := sim.New()
		churn := workload.NewChurn(engine, fog, w.Pop, 5, sim.NewRand(9))
		churn.Start()
		engine.RunUntil(30 * time.Minute)
		b.StopTimer()
		for _, p := range w.Pop.Players {
			if p.Online {
				fog.Leave(p)
			}
		}
		b.StartTimer()
	}
}

// BenchmarkSweepSerial/BenchmarkSweepParallel time one coverage figure on
// one worker versus the full pool — the parallel-sweep half of the
// tentpole. On a single-CPU host the two coincide.
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	cfg := experiment.Default(2028)
	cfg.Players = 2500
	cfg.Supernodes = 200
	cfg.EdgeServers = 20
	cfg.SweepWorkers = workers
	w, err := experiment.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CoverageVsSupernodes(w, []int{0, 100, 200}, benchReqs()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// --- Game-state substrate benchmarks ---

func BenchmarkWorldTick(b *testing.B) {
	w := world.New(world.DefaultConfig())
	rng := sim.NewRand(5)
	for i := int64(1); i <= 500; i++ {
		w.SpawnAvatar(i, world.Vec2{X: rng.Float64() * 10000, Y: rng.Float64() * 10000})
	}
	actions := make([]world.Action, 50)
	for i := range actions {
		actions[i] = world.Action{
			Player: int64(1 + rng.Intn(500)),
			Kind:   world.ActionMove,
			Target: world.Vec2{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Apply(actions)
		w.Step(1.0 / 30)
	}
}

func BenchmarkWorldDelta(b *testing.B) {
	w := world.New(world.DefaultConfig())
	rng := sim.NewRand(6)
	for i := int64(1); i <= 500; i++ {
		w.SpawnAvatar(i, world.Vec2{X: rng.Float64() * 10000, Y: rng.Float64() * 10000})
		w.Apply([]world.Action{{Player: i, Kind: world.ActionMove,
			Target: world.Vec2{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}}})
	}
	r := world.NewReplica()
	if err := r.Apply(w.Snapshot()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(1.0 / 30)
		d := w.DeltaSince(r.Version())
		if err := r.Apply(d); err != nil {
			b.Fatal(err)
		}
		w.Compact(r.Version())
	}
}

func BenchmarkProtoDeltaRoundTrip(b *testing.B) {
	d := world.Delta{FromVersion: 1, ToVersion: 2}
	for i := 0; i < 100; i++ {
		d.Updated = append(d.Updated, world.Entity{
			ID: world.EntityID(i), Kind: world.KindAvatar, Owner: int64(i),
			Pos: world.Vec2{X: float64(i), Y: float64(i)}, HP: 100, Version: 2,
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := proto.MarshalDelta(d)
		if _, err := proto.UnmarshalDelta(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionKD(b *testing.B) {
	rng := sim.NewRand(7)
	avatars := make([]world.Vec2, 2000)
	for i := range avatars {
		avatars[i] = world.Vec2{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
	}
	bounds := world.DefaultConfig().Bounds
	var regions []world.Region
	for i := 0; i < b.N; i++ {
		regions = world.PartitionKD(bounds, avatars, 5)
	}
	assign := world.AssignRegions(regions, 5)
	b.ReportMetric(world.LoadImbalance(regions, assign, 5), "imbalance")
}

// BenchmarkAblationCooperation measures the §V future-work extension: mean
// fog latency before and after a supernode-cooperation rebalancing pass on
// a churn-scattered deployment.
func BenchmarkAblationCooperation(b *testing.B) {
	cfg := core.DefaultConfig(31)
	cfg.Locator.ErrorSigma = 0
	placer := geo.DefaultUSPlacer()
	g, _ := game.ByID(5)

	var before, after float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := sim.NewRand(32)
		dcs := []*core.Datacenter{core.NewDatacenter(2_000_000, cfg.Region.Center(), cfg.DCEgress)}
		sns := make([]*core.Supernode, 40)
		for j := range sns {
			sns[j] = core.NewSupernode(1_000_000+int64(j), placer.Place(rng), 6, 6*cfg.UplinkPerSlot)
		}
		fog, err := core.BuildFog(cfg, dcs, sns, rng.Fork())
		if err != nil {
			b.Fatal(err)
		}
		players := make([]*core.Player, 150)
		for j := range players {
			players[j] = &core.Player{ID: int64(j), Pos: placer.Place(rng), Game: g, Downlink: 20_000_000}
			fog.Join(players[j])
		}
		for round := 0; round < 3; round++ {
			var busiest *core.Supernode
			for _, sn := range fog.Supernodes() {
				if busiest == nil || sn.Load() > busiest.Load() {
					busiest = sn
				}
			}
			spec := *busiest
			fog.DeregisterSupernode(busiest.ID)
			fog.RegisterSupernode(core.NewSupernode(spec.ID, spec.Pos, spec.Capacity, spec.Uplink))
		}
		mean := func() float64 {
			var sum time.Duration
			n := 0
			for _, p := range players {
				if p.Attached.Kind == core.AttachSupernode {
					sum += p.Attached.StreamLatency + p.Attached.UpdateLatency
					n++
				}
			}
			return float64(sum.Milliseconds()) / float64(n)
		}
		before = mean()
		b.StartTimer()
		coop.Rebalance(fog, coop.DefaultConfig())
		b.StopTimer()
		after = mean()
	}
	b.ReportMetric(before, "ms-before")
	b.ReportMetric(after, "ms-after")
}
