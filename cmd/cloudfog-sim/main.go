// Command cloudfog-sim regenerates the CloudFog paper's simulator figures
// (5a, 5b, 7a, 8a, 9a, 10a, 11a) and prints each as a text table with the
// same axes the paper plots. Figures come from the experiment package's
// registry, so -figures accepts any comma-separated subset by name.
//
// With -report the run also aggregates the observability counters of every
// system and QoE simulation it performed (segment lifecycle, drop
// decisions, assignment outcomes, engine events) and writes them as a JSON
// snapshot, checking that the segment ledger balances before exiting.
//
// The resilience figures (figchurn, figrecovery) replay a deterministic
// fault profile — supernode crashes, loss bursts, latency spikes, bandwidth
// collapse — against the fog; -faults loads a custom profile JSON, and the
// -report fault ledger then reconciles every orphaned player against the
// failover outcomes. -detector swaps their oracle repair delays for real
// heartbeat detection (timeout or phi-accrual), -overload installs the
// supernode degradation ladder, and -breaker guards the cloud fallback with
// a circuit breaker; figdetect sweeps all three detector modes against the
// same crash schedule and the -report health ledger reconciles every
// observed kill against detections.
//
// Usage:
//
//	cloudfog-sim -figures all
//	cloudfog-sim -figures fig9a,fig10a -report out.json
//	cloudfog-sim -figures 5b -players 10000 -supernodes 600
//	cloudfog-sim -figures figrecovery -faults examples/chaos/profile.json -report chaos.json
//	cloudfog-sim -figures figdetect -report detect.json
//	cloudfog-sim -figures figchurn -detector phi -overload -breaker
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cloudfog/internal/experiment"
	"cloudfog/internal/fault"
	"cloudfog/internal/metrics"
	"cloudfog/internal/obs"
	"cloudfog/internal/trace"
)

var (
	figuresFlag    = flag.String("figures", "", "comma-separated figures to regenerate (fig5a..fig11a, bare \"9a\" accepted, \"all\" or empty = every figure)")
	figFlag        = flag.String("fig", "", "deprecated alias for -figures")
	seedFlag       = flag.Int64("seed", 2026, "experiment seed")
	playersFlag    = flag.Int("players", 10000, "population size")
	supernodesFlag = flag.Int("supernodes", 600, "supernodes selected from capable players")
	dcsFlag        = flag.Int("datacenters", 5, "default number of main datacenters")
	horizonFlag    = flag.Duration("horizon", 60*time.Second, "virtual time horizon for QoE figures")
	csvFlag        = flag.Bool("csv", false, "emit comma-separated tables instead of aligned text")
	reportFlag     = flag.String("report", "", "write a JSON observability snapshot of the run to this file")
	traceOutFlag   = flag.String("save-trace", "", "write the latency model parameters to this file")
	workersFlag    = flag.Int("sweep-workers", 0, "sweep worker pool size: 0 = one per CPU, 1 = serial")
	faultsFlag     = flag.String("faults", "", "fault profile JSON for the resilience figures (figchurn, figrecovery); empty = built-in chaos profile")
	detectorFlag   = flag.String("detector", "", "failure detector for the resilience figures: oracle (default, drawn delays), timeout, or phi")
	overloadFlag   = flag.Bool("overload", false, "install the supernode overload-degradation ladder on resilience-figure fogs")
	breakerFlag    = flag.Bool("breaker", false, "install the cloud-fallback circuit breaker on resilience-figure fogs")
	shardsFlag     = flag.Int("shards", 1, "partition a single run's world into this many geographic shards run in parallel between epoch barriers (figure output is byte-identical at any value)")
	epochFlag      = flag.Duration("epoch", 0, "sharded-run barrier interval (0 = 15s default)")
	nodeBudgetFlag = flag.Int("scale-nodes", 0, "sharded scaling run: supernodes sampled for segment-level QoE per epoch (0 = 32 default, negative = all)")
	scaleFlag      = flag.Bool("scale", false, "run only the sharded scaling experiment (figscale) and print its timing and shard diagnostics")
	cpuProfFlag    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfFlag    = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

func main() {
	flag.Parse()
	if err := withProfiles(run); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-sim:", err)
		os.Exit(1)
	}
}

// withProfiles brackets fn with the standard pprof hooks: a CPU profile
// covering the whole run and a heap profile snapped at the end.
func withProfiles(fn func() error) error {
	if *cpuProfFlag != "" {
		f, err := os.Create(*cpuProfFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if *memProfFlag != "" {
		f, err := os.Create(*memProfFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// selection resolves -figures (with -fig as a deprecated fallback).
func selection() string {
	if *figuresFlag != "" {
		return *figuresFlag
	}
	return *figFlag
}

func run() error {
	figs, err := experiment.SelectFigures(selection())
	if err != nil {
		return err
	}

	cfg := experiment.Default(*seedFlag)
	cfg.Players = *playersFlag
	cfg.Supernodes = *supernodesFlag
	cfg.Datacenters = *dcsFlag
	cfg.SweepWorkers = *workersFlag
	cfg.Shards = *shardsFlag
	if *reportFlag != "" {
		cfg.Obs = obs.NewRegistry()
	}

	fmt.Printf("CloudFog simulator — %d players, %d supernodes, %d datacenters, seed %d\n\n",
		cfg.Players, cfg.Supernodes, cfg.Datacenters, cfg.Seed)

	if *traceOutFlag != "" {
		f, err := os.Create(*traceOutFlag)
		if err != nil {
			return err
		}
		if err := cfg.Core.Latency.(trace.Model).Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("latency model saved to %s\n\n", *traceOutFlag)
	}

	w, err := experiment.NewWorld(cfg)
	if err != nil {
		return err
	}

	opts := experiment.DefaultRunOptions()
	opts.Horizon = *horizonFlag
	opts.Detector = *detectorFlag
	opts.Overload = *overloadFlag
	opts.Breaker = *breakerFlag
	opts.ScaleEpoch = *epochFlag
	opts.ScaleNodeBudget = *nodeBudgetFlag
	if *faultsFlag != "" {
		profile, err := fault.Load(*faultsFlag)
		if err != nil {
			return err
		}
		opts.Faults = profile
		fmt.Printf("fault profile %q loaded from %s (seed %d, %d specs, %v)\n\n",
			profile.Name, *faultsFlag, profile.Seed, len(profile.Specs), profile.Duration.Duration)
	}

	if *scaleFlag {
		return runScale(w, opts)
	}

	for _, fig := range figs {
		res, err := fig.Run(w, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", fig.Name, err)
		}
		title := fig.Title
		if res.Title != "" {
			title = res.Title
		}
		fmt.Println(title)
		switch {
		case len(res.Latency) > 0:
			for _, r := range res.Latency {
				fmt.Printf("  %-12s mean=%-8v median=%-8v p90=%v\n",
					r.System, r.Mean.Round(time.Millisecond),
					r.Median.Round(time.Millisecond), r.P90.Round(time.Millisecond))
			}
			fmt.Println()
		default:
			if *csvFlag {
				fmt.Println(csvTable(fig.XLabel, res.Series))
			} else {
				fmt.Println(metrics.Table(fig.XLabel, res.Series))
			}
		}
	}

	if *reportFlag != "" {
		if err := writeReport(*reportFlag, cfg.Obs); err != nil {
			return err
		}
	}
	return nil
}

// runScale executes only the sharded scaling experiment and prints its wall
// time and shard diagnostics — the -scale demo path for million-player runs.
func runScale(w *experiment.World, opts experiment.RunOptions) error {
	start := time.Now()
	res, fig, err := experiment.ScaleRun(w, opts)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Println(fig.Title)
	fmt.Println(metrics.Table(fig.XLabel, fig.Series))
	fmt.Printf("shards=%d epochs=%d wall=%v\n", res.Shards, res.Epochs, wall.Round(time.Millisecond))
	fmt.Printf("kills=%d recoveries=%d detections=%d (mean %.2fs) repairs=%d lapsed=%d cloud_hops=%d moved=%d pending_end=%d\n",
		res.Kills, res.Recoveries, res.Detections, res.MeanDetectionLatency().Seconds(),
		res.Repairs, res.Lapsed, res.CloudHops, res.Moved, res.PendingEnd)
	fmt.Printf("cross-shard: repairs=%d migrations=%d (partition diagnostics; not part of figure output)\n",
		res.CrossShardRepairs, res.CrossShardMigrations)
	fmt.Printf("sampled continuity: %.4f over %d players (%d node-epoch simulations)\n",
		res.MeanContinuity, res.QoEPlayers, res.QoENodeRuns)
	return nil
}

// runReport is the -report JSON payload: the raw instrument snapshot plus
// the segment-ledger reconciliation derived from it.
type runReport struct {
	Snapshot       obs.Snapshot   `json:"snapshot"`
	Reconciliation reconciliation `json:"reconciliation"`
	// Faults reconciles the fault-injection orphan ledger when the run
	// injected any faults; omitted otherwise.
	Faults *faultRecon `json:"faults,omitempty"`
	// Health reconciles the heartbeat detection ledger when any run used a
	// heartbeat detector; omitted otherwise.
	Health *healthRecon `json:"health,omitempty"`
}

type reconciliation struct {
	SegmentsGenerated   int64 `json:"segments_generated"`
	SegmentsDelivered   int64 `json:"segments_delivered"`
	SegmentsDropped     int64 `json:"segments_dropped"`
	SegmentsInFlightEnd int64 `json:"segments_inflight_end"`
	// Balanced is generated == delivered + dropped + in-flight: every
	// segment the encoders produced is accounted for.
	Balanced bool `json:"balanced"`
}

// faultRecon is the injected-fault ledger: every orphaned player must be
// absorbed by a backup, reassigned through the full protocol, lapsed to
// unserved, or still awaiting a pending repair at the horizon.
type faultRecon struct {
	Kills      int64 `json:"kills"`
	Recoveries int64 `json:"recoveries"`
	Orphaned   int64 `json:"orphaned"`
	BackupHits int64 `json:"failover_backup_hits"`
	Reassigns  int64 `json:"failover_reassigns"`
	Lapsed     int64 `json:"lapsed"`
	PendingEnd int64 `json:"pending_end"`
	// OrphansBalanced is orphaned == backup hits + reassigns + lapsed +
	// pending.
	OrphansBalanced bool `json:"orphans_balanced"`
}

// healthRecon is the failure-detection ledger: every kill applied under a
// heartbeat monitor is either detected or still pending at the horizon, and
// false positives count live nodes wrongly suspected.
type healthRecon struct {
	HeartbeatsSent int64 `json:"heartbeats_sent"`
	HeartbeatsLost int64 `json:"heartbeats_lost"`
	KillsObserved  int64 `json:"kills_observed"`
	Detected       int64 `json:"detected"`
	DetectPending  int64 `json:"detect_pending"`
	FalsePositives int64 `json:"false_positives"`
	// KillsBalanced is detected + detect_pending == kills_observed.
	KillsBalanced bool `json:"kills_balanced"`
}

func writeReport(path string, reg *obs.Registry) error {
	snap := reg.Snapshot()
	rec := reconciliation{
		SegmentsGenerated:   snap.Counters["cloudfog_qoe_segments_generated_total"],
		SegmentsDelivered:   snap.Counters["cloudfog_qoe_segments_delivered_total"],
		SegmentsDropped:     snap.Counters["cloudfog_qoe_segments_dropped_total"],
		SegmentsInFlightEnd: snap.Counters["cloudfog_qoe_segments_inflight_end_total"],
	}
	rec.Balanced = rec.SegmentsGenerated ==
		rec.SegmentsDelivered+rec.SegmentsDropped+rec.SegmentsInFlightEnd
	var faults *faultRecon
	if snap.Counters["cloudfog_fault_kills_total"] > 0 ||
		snap.Counters["cloudfog_fault_orphaned_total"] > 0 {
		faults = &faultRecon{
			Kills:      snap.Counters["cloudfog_fault_kills_total"],
			Recoveries: snap.Counters["cloudfog_fault_recoveries_total"],
			Orphaned:   snap.Counters["cloudfog_fault_orphaned_total"],
			BackupHits: snap.Counters["cloudfog_assign_failover_backup_total"],
			Reassigns:  snap.Counters["cloudfog_assign_failover_rerun_total"],
			Lapsed:     snap.Counters["cloudfog_fault_lapsed_total"],
			PendingEnd: snap.Counters["cloudfog_fault_pending_end_total"],
		}
		faults.OrphansBalanced = faults.Orphaned ==
			faults.BackupHits+faults.Reassigns+faults.Lapsed+faults.PendingEnd
	}
	var hl *healthRecon
	if snap.Counters["cloudfog_health_heartbeats_sent_total"] > 0 ||
		snap.Counters["cloudfog_health_kills_observed_total"] > 0 {
		hl = &healthRecon{
			HeartbeatsSent: snap.Counters["cloudfog_health_heartbeats_sent_total"],
			HeartbeatsLost: snap.Counters["cloudfog_health_heartbeats_lost_total"],
			KillsObserved:  snap.Counters["cloudfog_health_kills_observed_total"],
			Detected:       snap.Counters["cloudfog_health_detected_total"],
			DetectPending:  snap.Counters["cloudfog_health_detect_pending_total"],
			FalsePositives: snap.Counters["cloudfog_health_false_positives_total"],
		}
		hl.KillsBalanced = hl.KillsObserved == hl.Detected+hl.DetectPending
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(runReport{Snapshot: snap, Reconciliation: rec, Faults: faults, Health: hl}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("observability report written to %s (generated=%d delivered=%d dropped=%d inflight=%d)\n",
		path, rec.SegmentsGenerated, rec.SegmentsDelivered, rec.SegmentsDropped, rec.SegmentsInFlightEnd)
	if !rec.Balanced {
		return fmt.Errorf("segment ledger does not balance: %d generated vs %d delivered + %d dropped + %d in flight",
			rec.SegmentsGenerated, rec.SegmentsDelivered, rec.SegmentsDropped, rec.SegmentsInFlightEnd)
	}
	if faults != nil {
		fmt.Printf("fault ledger: kills=%d recoveries=%d orphaned=%d backup_hits=%d reassigns=%d lapsed=%d pending=%d\n",
			faults.Kills, faults.Recoveries, faults.Orphaned, faults.BackupHits,
			faults.Reassigns, faults.Lapsed, faults.PendingEnd)
		if !faults.OrphansBalanced {
			return fmt.Errorf("fault orphan ledger does not balance: %d orphaned vs %d backup + %d reassigned + %d lapsed + %d pending",
				faults.Orphaned, faults.BackupHits, faults.Reassigns, faults.Lapsed, faults.PendingEnd)
		}
	}
	if hl != nil {
		fmt.Printf("health ledger: heartbeats=%d (lost %d) kills_observed=%d detected=%d pending=%d false_positives=%d\n",
			hl.HeartbeatsSent, hl.HeartbeatsLost, hl.KillsObserved, hl.Detected, hl.DetectPending, hl.FalsePositives)
		if !hl.KillsBalanced {
			return fmt.Errorf("health detection ledger does not balance: %d kills observed vs %d detected + %d pending",
				hl.KillsObserved, hl.Detected, hl.DetectPending)
		}
	}
	return nil
}

// csvTable renders series as CSV: header then one row per x value.
func csvTable(xLabel string, series []metrics.Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteString("," + s.Label)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.6g", p.Y)
					break
				}
			}
			b.WriteString("," + cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
