// Command cloudfog-sim regenerates the CloudFog paper's simulator figures
// (5a, 5b, 7a, 8a, 9a, 10a, 11a) and prints each as a text table with the
// same axes the paper plots.
//
// Usage:
//
//	cloudfog-sim -fig all
//	cloudfog-sim -fig 5b -players 10000 -supernodes 600
//	cloudfog-sim -fig 10a -horizon 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cloudfog/internal/experiment"
	"cloudfog/internal/metrics"
	"cloudfog/internal/trace"
)

var (
	figFlag        = flag.String("fig", "all", "figure to regenerate: 5a, 5b, 7a, 8a, 9a, 10a, 11a, or all")
	seedFlag       = flag.Int64("seed", 2026, "experiment seed")
	playersFlag    = flag.Int("players", 10000, "population size")
	supernodesFlag = flag.Int("supernodes", 600, "supernodes selected from capable players")
	dcsFlag        = flag.Int("datacenters", 5, "default number of main datacenters")
	horizonFlag    = flag.Duration("horizon", 60*time.Second, "virtual time horizon for QoE figures")
	csvFlag        = flag.Bool("csv", false, "emit comma-separated tables instead of aligned text")
	traceOutFlag   = flag.String("save-trace", "", "write the latency model parameters to this file")
	workersFlag    = flag.Int("sweep-workers", 0, "sweep worker pool size: 0 = one per CPU, 1 = serial")
	cpuProfFlag    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfFlag    = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

func main() {
	flag.Parse()
	if err := withProfiles(run); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-sim:", err)
		os.Exit(1)
	}
}

// withProfiles brackets fn with the standard pprof hooks: a CPU profile
// covering the whole run and a heap profile snapped at the end.
func withProfiles(fn func() error) error {
	if *cpuProfFlag != "" {
		f, err := os.Create(*cpuProfFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if *memProfFlag != "" {
		f, err := os.Create(*memProfFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func reqs() []time.Duration {
	return []time.Duration{
		30 * time.Millisecond, 50 * time.Millisecond, 70 * time.Millisecond,
		90 * time.Millisecond, 110 * time.Millisecond,
	}
}

func run() error {
	cfg := experiment.Default(*seedFlag)
	cfg.Players = *playersFlag
	cfg.Supernodes = *supernodesFlag
	cfg.Datacenters = *dcsFlag
	cfg.SweepWorkers = *workersFlag

	fmt.Printf("CloudFog simulator — %d players, %d supernodes, %d datacenters, seed %d\n\n",
		cfg.Players, cfg.Supernodes, cfg.Datacenters, cfg.Seed)

	if *traceOutFlag != "" {
		f, err := os.Create(*traceOutFlag)
		if err != nil {
			return err
		}
		if err := cfg.Core.Latency.(trace.Model).Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("latency model saved to %s\n\n", *traceOutFlag)
	}

	w, err := experiment.NewWorld(cfg)
	if err != nil {
		return err
	}

	table := func(xLabel string, series []metrics.Series) string {
		if *csvFlag {
			return csvTable(xLabel, series)
		}
		return metrics.Table(xLabel, series)
	}

	want := func(fig string) bool { return *figFlag == "all" || *figFlag == fig }
	ran := false

	if want("5a") {
		ran = true
		series, err := experiment.CoverageVsDatacenters(w, []int{1, 5, 10, 15, 20, 25}, reqs())
		if err != nil {
			return err
		}
		fmt.Println("Figure 5(a): user coverage vs number of datacenters (Cloud)")
		fmt.Println(table("#datacenters", series))
	}
	if want("5b") {
		ran = true
		counts := []int{0, 100, 200, 300, 400, 500, 600}
		trimmed := counts[:0]
		for _, c := range counts {
			if c <= cfg.Supernodes {
				trimmed = append(trimmed, c)
			}
		}
		series, err := experiment.CoverageVsSupernodes(w, trimmed, reqs())
		if err != nil {
			return err
		}
		fmt.Printf("Figure 5(b): user coverage vs number of supernodes (%d datacenters)\n", cfg.Datacenters)
		fmt.Println(table("#supernodes", series))
	}
	if want("7a") {
		ran = true
		counts := []int{1000, 2000, 4000, 6000, 8000, 10000}
		trimmed := counts[:0]
		for _, c := range counts {
			if c <= cfg.Players {
				trimmed = append(trimmed, c)
			}
		}
		series, err := experiment.BandwidthVsPlayers(w, trimmed)
		if err != nil {
			return err
		}
		fmt.Println("Figure 7(a): cloud bandwidth consumption (Mbit/s) vs number of players")
		fmt.Println(table("#players", series))
	}
	if want("8a") {
		ran = true
		results, err := experiment.ResponseLatency(w)
		if err != nil {
			return err
		}
		fmt.Println("Figure 8(a): average response latency per player")
		for _, r := range results {
			fmt.Printf("  %-12s mean=%-8v median=%-8v p90=%v\n",
				r.System, r.Mean.Round(time.Millisecond),
				r.Median.Round(time.Millisecond), r.P90.Round(time.Millisecond))
		}
		fmt.Println()
	}
	if want("9a") {
		ran = true
		counts := []int{500, 1000, 2000, 3000}
		trimmed := counts[:0]
		for _, c := range counts {
			if c <= cfg.Players {
				trimmed = append(trimmed, c)
			}
		}
		series, err := experiment.ContinuityVsPlayers(w, trimmed, *horizonFlag/3)
		if err != nil {
			return err
		}
		fmt.Println("Figure 9(a): average playback continuity vs concurrent players")
		fmt.Println(table("#players", series))
	}
	if want("10a") {
		ran = true
		series, err := experiment.AdaptationEffect(w, []int{5, 10, 15, 20, 25, 30}, *horizonFlag)
		if err != nil {
			return err
		}
		fmt.Println("Figure 10(a): satisfied players, with/without encoding rate adaptation")
		fmt.Println(table("players/SN", series))
	}
	if want("11a") {
		ran = true
		series, err := experiment.SchedulingEffect(w, []int{5, 10, 15, 20, 25, 30}, *horizonFlag)
		if err != nil {
			return err
		}
		fmt.Println("Figure 11(a): satisfied players, with/without deadline-driven scheduling")
		fmt.Println(table("players/SN", series))
	}

	if !ran {
		return fmt.Errorf("unknown figure %q (want 5a, 5b, 7a, 8a, 9a, 10a, 11a, or all)", *figFlag)
	}
	return nil
}

// csvTable renders series as CSV: header then one row per x value.
func csvTable(xLabel string, series []metrics.Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteString("," + s.Label)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.6g", p.Y)
					break
				}
			}
			b.WriteString("," + cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
