// Command cloudfog-sim regenerates the CloudFog paper's simulator figures
// (5a, 5b, 7a, 8a, 9a, 10a, 11a) and prints each as a text table with the
// same axes the paper plots. Figures come from the experiment package's
// registry, so -figures accepts any comma-separated subset by name.
//
// With -report the run also aggregates the observability counters of every
// system and QoE simulation it performed (segment lifecycle, drop
// decisions, assignment outcomes, engine events) and writes them as a JSON
// snapshot, checking that the segment ledger balances before exiting.
//
// The resilience figures (figchurn, figrecovery) replay a deterministic
// fault profile — supernode crashes, loss bursts, latency spikes, bandwidth
// collapse — against the fog; -faults loads a custom profile JSON, and the
// -report fault ledger then reconciles every orphaned player against the
// failover outcomes. -detector swaps their oracle repair delays for real
// heartbeat detection (timeout or phi-accrual), -overload installs the
// supernode degradation ladder, and -breaker guards the cloud fallback with
// a circuit breaker; figdetect sweeps all three detector modes against the
// same crash schedule and the -report health ledger reconciles every
// observed kill against detections.
//
// -record captures the run as a flight recording: the launch spec, the
// compiled fault schedules, canonical figure bytes, per-figure
// observability deltas, and the sharded data plane's RNG witness. -replay
// re-runs a recording and verifies it bit-identically (-replay-from starts
// at a recorded figure checkpoint), and -whatif re-runs it with exactly one
// knob overridden and prints the ledger-reconciled QoE diff.
//
// Usage:
//
//	cloudfog-sim -figures all
//	cloudfog-sim -figures fig9a,fig10a -report out.json
//	cloudfog-sim -figures 5b -players 10000 -supernodes 600
//	cloudfog-sim -figures figrecovery -faults examples/chaos/profile.json -report chaos.json
//	cloudfog-sim -figures figdetect -report detect.json
//	cloudfog-sim -figures figchurn -detector phi -overload -breaker
//	cloudfog-sim -figures figscale -detector timeout -record incident.flight
//	cloudfog-sim -replay incident.flight
//	cloudfog-sim -replay incident.flight -replay-from figscale
//	cloudfog-sim -replay incident.flight -whatif detector=phi -expect-diff
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cloudfog/internal/experiment"
	"cloudfog/internal/fault"
	"cloudfog/internal/flight"
	"cloudfog/internal/metrics"
	"cloudfog/internal/obs"
	"cloudfog/internal/trace"
)

var (
	figuresFlag    = flag.String("figures", "", "comma-separated figures to regenerate (fig5a..fig11a, bare \"9a\" accepted, \"all\" or empty = every figure)")
	figFlag        = flag.String("fig", "", "deprecated alias for -figures")
	seedFlag       = flag.Int64("seed", 2026, "experiment seed")
	playersFlag    = flag.Int("players", 10000, "population size")
	supernodesFlag = flag.Int("supernodes", 600, "supernodes selected from capable players")
	dcsFlag        = flag.Int("datacenters", 5, "default number of main datacenters")
	horizonFlag    = flag.Duration("horizon", 60*time.Second, "virtual time horizon for QoE figures")
	csvFlag        = flag.Bool("csv", false, "emit comma-separated tables instead of aligned text")
	reportFlag     = flag.String("report", "", "write a JSON observability snapshot of the run to this file")
	traceOutFlag   = flag.String("save-trace", "", "write the latency model parameters to this file")
	workersFlag    = flag.Int("sweep-workers", 0, "sweep worker pool size: 0 = one per CPU, 1 = serial")
	faultsFlag     = flag.String("faults", "", "fault profile JSON for the resilience figures (figchurn, figrecovery); empty = built-in chaos profile")
	detectorFlag   = flag.String("detector", "", "failure detector for the resilience figures: oracle (default, drawn delays), timeout, or phi")
	overloadFlag   = flag.Bool("overload", false, "install the supernode overload-degradation ladder on resilience-figure fogs")
	breakerFlag    = flag.Bool("breaker", false, "install the cloud-fallback circuit breaker on resilience-figure fogs")
	shardsFlag     = flag.Int("shards", 1, "partition a single run's world into this many geographic shards run in parallel between epoch barriers (figure output is byte-identical at any value)")
	epochFlag      = flag.Duration("epoch", 0, "sharded-run barrier interval (0 = 15s default)")
	nodeBudgetFlag = flag.Int("scale-nodes", 0, "sharded scaling run: supernodes sampled for segment-level QoE per epoch (0 = 32 default, negative = all)")
	scaleFlag      = flag.Bool("scale", false, "run only the sharded scaling experiment (figscale) and print its timing and shard diagnostics")
	recordFlag     = flag.String("record", "", "run the selected figures under the flight recorder and write the recording to this file")
	replayFlag     = flag.String("replay", "", "replay a flight recording and verify it bit-identically (figure flags are ignored; the recording's spec drives the run)")
	replayFromFlag = flag.String("replay-from", "", "start the replay at this recorded figure checkpoint, skipping (and trusting) earlier figures")
	whatifFlag     = flag.String("whatif", "", "with -replay: re-run the recording with one knob overridden (key=value, e.g. detector=phi) and print the QoE diff")
	expectDiffFlag = flag.Bool("expect-diff", false, "with -whatif: exit non-zero if the override changes nothing observable")
	cpuProfFlag    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfFlag    = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

func main() {
	flag.Parse()
	if err := withProfiles(run); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-sim:", err)
		os.Exit(1)
	}
}

// withProfiles brackets fn with the standard pprof hooks: a CPU profile
// covering the whole run and a heap profile snapped at the end.
func withProfiles(fn func() error) error {
	if *cpuProfFlag != "" {
		f, err := os.Create(*cpuProfFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if *memProfFlag != "" {
		f, err := os.Create(*memProfFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// selection resolves -figures (with -fig as a deprecated fallback).
func selection() string {
	if *figuresFlag != "" {
		return *figuresFlag
	}
	return *figFlag
}

func run() error {
	if *replayFlag != "" {
		return runReplay()
	}
	if *recordFlag != "" {
		return runRecord()
	}
	figs, err := experiment.SelectFigures(selection())
	if err != nil {
		return err
	}

	cfg := experiment.Default(*seedFlag)
	cfg.Players = *playersFlag
	cfg.Supernodes = *supernodesFlag
	cfg.Datacenters = *dcsFlag
	cfg.SweepWorkers = *workersFlag
	cfg.Shards = *shardsFlag
	if *reportFlag != "" {
		cfg.Obs = obs.NewRegistry()
	}

	fmt.Printf("CloudFog simulator — %d players, %d supernodes, %d datacenters, seed %d\n\n",
		cfg.Players, cfg.Supernodes, cfg.Datacenters, cfg.Seed)

	if *traceOutFlag != "" {
		f, err := os.Create(*traceOutFlag)
		if err != nil {
			return err
		}
		if err := cfg.Core.Latency.(trace.Model).Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("latency model saved to %s\n\n", *traceOutFlag)
	}

	w, err := experiment.NewWorld(cfg)
	if err != nil {
		return err
	}

	opts := experiment.DefaultRunOptions()
	opts.Horizon = *horizonFlag
	opts.Detector = *detectorFlag
	opts.Overload = *overloadFlag
	opts.Breaker = *breakerFlag
	opts.ScaleEpoch = *epochFlag
	opts.ScaleNodeBudget = *nodeBudgetFlag
	if *faultsFlag != "" {
		profile, err := fault.Load(*faultsFlag)
		if err != nil {
			return err
		}
		opts.Faults = profile
		fmt.Printf("fault profile %q loaded from %s (seed %d, %d specs, %v)\n\n",
			profile.Name, *faultsFlag, profile.Seed, len(profile.Specs), profile.Duration.Duration)
	}

	if *scaleFlag {
		return runScale(w, opts)
	}

	for _, fig := range figs {
		res, err := fig.Run(w, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", fig.Name, err)
		}
		printFigure(fig, res)
	}

	if *reportFlag != "" {
		if err := writeReport(*reportFlag, cfg.Obs.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// printFigure renders one figure result the way the CLI always has.
func printFigure(fig experiment.Figure, res experiment.FigureResult) {
	title := fig.Title
	if res.Title != "" {
		title = res.Title
	}
	fmt.Println(title)
	switch {
	case len(res.Latency) > 0:
		for _, r := range res.Latency {
			fmt.Printf("  %-12s mean=%-8v median=%-8v p90=%v\n",
				r.System, r.Mean.Round(time.Millisecond),
				r.Median.Round(time.Millisecond), r.P90.Round(time.Millisecond))
		}
		fmt.Println()
	default:
		if *csvFlag {
			fmt.Println(csvTable(fig.XLabel, res.Series))
		} else {
			fmt.Println(metrics.Table(fig.XLabel, res.Series))
		}
	}
}

// specFromFlags lifts the CLI invocation into a flight.RunSpec — the
// launch half of a recording.
func specFromFlags() (flight.RunSpec, error) {
	spec := flight.RunSpec{
		Seed:         *seedFlag,
		Players:      *playersFlag,
		Supernodes:   *supernodesFlag,
		Datacenters:  *dcsFlag,
		Shards:       *shardsFlag,
		SweepWorkers: *workersFlag,
		Horizon:      *horizonFlag,
		Epoch:        *epochFlag,
		NodeBudget:   *nodeBudgetFlag,
		Detector:     *detectorFlag,
		Overload:     *overloadFlag,
		Breaker:      *breakerFlag,
	}
	if sel := strings.TrimSpace(selection()); sel != "" && !strings.EqualFold(sel, "all") {
		spec.Figures = strings.Split(sel, ",")
	}
	if *faultsFlag != "" {
		data, err := os.ReadFile(*faultsFlag)
		if err != nil {
			return spec, err
		}
		spec.FaultProfile = data
	}
	return spec.Normalize()
}

// runRecord executes the selected figures under the flight recorder,
// prints them as usual, and persists the recording.
func runRecord() error {
	spec, err := specFromFlags()
	if err != nil {
		return err
	}
	fmt.Printf("CloudFog flight recorder — %s\n\n", spec.Summary())
	rec, err := flight.Record(spec)
	if err != nil {
		return err
	}
	for _, fc := range rec.Figures {
		fig, err := experiment.FigureByName(fc.Name)
		if err != nil {
			return err
		}
		printFigure(fig, fc.Fig)
	}
	if err := flight.Save(*recordFlag, rec); err != nil {
		return err
	}
	data := flight.Encode(rec)
	fmt.Printf("flight recording written to %s (%d bytes, %d figures, %d schedules, world %08x)\n",
		*recordFlag, len(data), len(rec.Figures), len(rec.Schedules), rec.WorldFP)
	if *reportFlag != "" {
		return writeReport(*reportFlag, rec.Final)
	}
	return nil
}

// runReplay verifies a recording (or, with -whatif, diffs a counterfactual
// against it). A divergent replay and an unexpectedly empty what-if diff
// both exit non-zero.
func runReplay() error {
	rec, err := flight.Load(*replayFlag)
	if err != nil {
		return err
	}
	fmt.Printf("flight recording %s — %s\n", *replayFlag, rec.Spec.Summary())
	if *whatifFlag != "" {
		d, err := rec.WhatIf(*whatifFlag, "")
		if err != nil {
			return err
		}
		d.WriteText(os.Stdout)
		if *expectDiffFlag && d.Empty() {
			return fmt.Errorf("what-if %s changed nothing observable", *whatifFlag)
		}
		if *reportFlag != "" {
			f, err := os.Create(*reportFlag)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(d); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("what-if diff written to %s\n", *reportFlag)
		}
		return nil
	}
	rep, err := rec.Replay(*replayFromFlag)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	if !rep.Identical() {
		return fmt.Errorf("replay of %s diverged from the recording", *replayFlag)
	}
	return nil
}

// runScale executes only the sharded scaling experiment and prints its wall
// time and shard diagnostics — the -scale demo path for million-player runs.
func runScale(w *experiment.World, opts experiment.RunOptions) error {
	start := time.Now()
	res, fig, err := experiment.ScaleRun(w, opts)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Println(fig.Title)
	fmt.Println(metrics.Table(fig.XLabel, fig.Series))
	fmt.Printf("shards=%d epochs=%d wall=%v\n", res.Shards, res.Epochs, wall.Round(time.Millisecond))
	fmt.Printf("kills=%d recoveries=%d detections=%d (mean %.2fs) repairs=%d lapsed=%d cloud_hops=%d moved=%d pending_end=%d\n",
		res.Kills, res.Recoveries, res.Detections, res.MeanDetectionLatency().Seconds(),
		res.Repairs, res.Lapsed, res.CloudHops, res.Moved, res.PendingEnd)
	fmt.Printf("cross-shard: repairs=%d migrations=%d (partition diagnostics; not part of figure output)\n",
		res.CrossShardRepairs, res.CrossShardMigrations)
	fmt.Printf("sampled continuity: %.4f over %d players (%d node-epoch simulations)\n",
		res.MeanContinuity, res.QoEPlayers, res.QoENodeRuns)
	return nil
}

// runReport is the -report JSON payload: the raw instrument snapshot plus
// the ledger reconciliations derived from it. The ledgers are the flight
// package's — the same conservation laws the what-if mode enforces on both
// sides of a counterfactual — so a -report run and a recording reconcile
// through one code path.
type runReport struct {
	Snapshot       obs.Snapshot         `json:"snapshot"`
	Reconciliation flight.SegmentLedger `json:"reconciliation"`
	// Faults reconciles the fault-injection orphan ledger when the run
	// injected any faults; omitted otherwise.
	Faults *flight.FaultLedger `json:"faults,omitempty"`
	// Health reconciles the heartbeat detection ledger when any run used a
	// heartbeat detector; omitted otherwise.
	Health *flight.HealthLedger `json:"health,omitempty"`
}

func writeReport(path string, snap obs.Snapshot) error {
	ledgers := flight.Reconcile(snap)
	rec := ledgers.Segments
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(runReport{Snapshot: snap, Reconciliation: rec,
		Faults: ledgers.Faults, Health: ledgers.Health}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("observability report written to %s (generated=%d delivered=%d dropped=%d inflight=%d)\n",
		path, rec.Generated, rec.Delivered, rec.Dropped, rec.InFlightEnd)
	if faults := ledgers.Faults; faults != nil {
		fmt.Printf("fault ledger: kills=%d recoveries=%d orphaned=%d backup_hits=%d reassigns=%d lapsed=%d pending=%d\n",
			faults.Kills, faults.Recoveries, faults.Orphaned, faults.BackupHits,
			faults.Reassigns, faults.Lapsed, faults.PendingEnd)
	}
	if hl := ledgers.Health; hl != nil {
		fmt.Printf("health ledger: heartbeats=%d (lost %d) kills_observed=%d detected=%d pending=%d false_positives=%d\n",
			hl.HeartbeatsSent, hl.HeartbeatsLost, hl.KillsObserved, hl.Detected, hl.DetectPending, hl.FalsePositives)
	}
	return ledgers.Err()
}

// csvTable renders series as CSV: header then one row per x value.
func csvTable(xLabel string, series []metrics.Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteString("," + s.Label)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.6g", p.Y)
					break
				}
			}
			b.WriteString("," + cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
