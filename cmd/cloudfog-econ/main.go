// Command cloudfog-econ explores CloudFog's economic model (paper §III-A,
// Eqs. 1-6): contributor incentives, the provider's saved-cost objective,
// and marginal deployment decisions, over a synthetic candidate pool.
//
// Usage:
//
//	cloudfog-econ
//	cloudfog-econ -reward 0.3 -revenue 1.0 -stream 1.3 -update 0.05 -target 500
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudfog/internal/econ"
	"cloudfog/internal/sim"
)

var (
	rewardFlag     = flag.Float64("reward", 0.25, "c_s: reward per contributed bandwidth unit")
	revenueFlag    = flag.Float64("revenue", 1.0, "c_c: provider value per saved bandwidth unit")
	streamFlag     = flag.Float64("stream", 1.3, "R: stream bandwidth per player (units)")
	updateFlag     = flag.Float64("update", 0.05, "Λ: cloud→supernode update bandwidth (units)")
	targetFlag     = flag.Int("target", 500, "players the provider wants fog-served")
	candidatesFlag = flag.Int("candidates", 200, "size of the candidate supernode pool")
	seedFlag       = flag.Int64("seed", 7, "candidate pool seed")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-econ:", err)
		os.Exit(1)
	}
}

func run() error {
	params := econ.Params{
		RewardPerUnit:  *rewardFlag,
		RevenuePerUnit: *revenueFlag,
		StreamRate:     *streamFlag,
		UpdateRate:     *updateFlag,
	}
	if err := params.Validate(); err != nil {
		return err
	}

	rng := sim.NewRand(*seedFlag)
	candidates := make([]econ.Supernode, *candidatesFlag)
	for i := range candidates {
		candidates[i] = econ.Supernode{
			Capacity:     rng.CapacityPareto() * params.StreamRate,
			Utilization:  0.5 + 0.5*rng.Float64(),
			Cost:         0.3 + 1.2*rng.Float64(),
			CoverageGain: 1 + rng.Intn(8),
		}
	}

	fmt.Printf("market: c_s=%.2f c_c=%.2f R=%.2f Λ=%.2f, %d candidates (Pareto capacities)\n\n",
		params.RewardPerUnit, params.RevenuePerUnit, params.StreamRate,
		params.UpdateRate, len(candidates))

	fmt.Println("== contributor incentives (Eq. 1: P_s = c_s·c_j·u_j − cost_j) ==")
	fmt.Println("reward c_s   willing contributors   total contribution B_s")
	for _, cs := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50} {
		willing := 0
		contribution := 0.0
		for _, c := range candidates {
			if econ.WillContribute(cs, c, 0) {
				willing++
				contribution += c.Contribution()
			}
		}
		fmt.Printf("  %.2f       %4d / %-4d            %8.1f units\n",
			cs, willing, len(candidates), contribution)
	}

	fmt.Println("\n== provider planning (Eqs. 2-5) ==")
	plan, err := params.PlanDeployment(*targetFlag, candidates)
	if err != nil {
		return err
	}
	fmt.Printf("target %d players: deploy %d supernodes (m minimized per Eq. 3), support %d\n",
		*targetFlag, len(plan.Chosen), plan.Supported)
	fmt.Printf("bandwidth reduction B_r = %.1f units (Eq. 2)\n",
		params.BandwidthReduction(*targetFlag, len(plan.Chosen)))
	fmt.Printf("provider saving   C_g = %.1f units (Eq. 3)\n", plan.Saving)

	fmt.Println("\n== marginal deployments (Eq. 6: G_s = c_c(ν·R − Λ) − c_s·c_j·u_j) ==")
	deploy, skip := 0, 0
	for _, c := range candidates {
		if params.WorthDeploying(c) {
			deploy++
		} else {
			skip++
		}
	}
	fmt.Printf("of %d candidates, %d are individually worth deploying, %d are not\n",
		len(candidates), deploy, skip)
	return nil
}
