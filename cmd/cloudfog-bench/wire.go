// Wire-path benchmarks: the zero-copy segment encode and the saturation
// comparison between the seed's per-frame write path (MarshalSegment
// allocation + WriteFrame's header/payload write pair per segment) and the
// coalescing Link (pooled encode-in-place, flush-deadline writev batches).
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"testing"

	"cloudfog/internal/live"
	"cloudfog/internal/obs"
	"cloudfog/internal/proto"
)

// wirePayloadBytes is deliberately small: saturation measures the frame-rate
// ceiling of the wire path itself, so per-frame overhead (syscalls, allocs,
// header handling) must dominate over payload memcpy bandwidth — the same
// reason packet-per-second tests use minimum-size packets. Large segments
// are bandwidth-bound under either strategy and say nothing about framing.
const wirePayloadBytes = 64

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair() (client, server net.Conn, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, aerr := ln.Accept()
		ch <- res{c, aerr}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		return nil, nil, r.err
	}
	return client, r.conn, nil
}

// drainSeed consumes frames the way the seed's player did: ReadFrame
// straight off the raw conn (a header read plus a payload read per frame,
// each freshly allocated) and an allocating UnmarshalSegment.
func drainSeed(conn net.Conn, n int) error {
	for i := 0; i < n; i++ {
		_, payload, err := proto.ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		if _, err := proto.UnmarshalSegment(payload); err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
	}
	return nil
}

// drainPooled consumes frames the way the PR's player does: a buffered
// reader feeding ReadFrameReuse into one recycled buffer, decoded by
// UnmarshalSegmentInto which borrows the payload instead of copying it.
func drainPooled(conn net.Conn, n int) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	var buf []byte
	var seg proto.Segment
	for i := 0; i < n; i++ {
		if _, payload, err := proto.ReadFrameReuse(br, &buf); err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		} else if err := proto.UnmarshalSegmentInto(payload, &seg); err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
	}
	return nil
}

// wireSaturationPerFrame is the seed wire path end to end: marshal a fresh
// segment payload and issue one WriteFrame (a header write plus a payload
// write) per frame, drained by the seed's raw-conn allocating reader.
func wireSaturationPerFrame(b *testing.B) {
	b.ReportAllocs()
	c1, c2, err := tcpPair()
	if err != nil {
		b.Fatal(err)
	}
	defer c1.Close()
	defer c2.Close()
	payload := make([]byte, wirePayloadBytes)
	done := make(chan error, 1)
	go func() { done <- drainSeed(c2, b.N) }()
	seg := proto.Segment{Player: 1, Level: 3, Payload: payload}
	b.SetBytes(wirePayloadBytes + proto.FrameHeaderLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.Seq = int64(i)
		if err := proto.WriteFrame(c1, proto.TSegment, proto.MarshalSegment(seg)); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// wireSaturationCoalesced is the PR's wire path end to end: render into a
// pooled frame (header + segment fields + payload appended in place), hand
// it to the coalescing Link — which folds release-ready frames into writev
// batches — and drain with the pooled borrowing reader.
func wireSaturationCoalesced(b *testing.B, stats *obs.LinkStats) {
	b.ReportAllocs()
	c1, c2, err := tcpPair()
	if err != nil {
		b.Fatal(err)
	}
	defer c2.Close()
	link := live.NewLinkOpts(c1, live.LinkOptions{Stats: stats})
	defer link.Close()
	payload := make([]byte, wirePayloadBytes)
	done := make(chan error, 1)
	go func() { done <- drainPooled(c2, b.N) }()
	seg := proto.Segment{Player: 1, Level: 3}
	b.SetBytes(wirePayloadBytes + proto.FrameHeaderLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.Seq = int64(i)
		frame := link.AcquireFrame(proto.TSegment)
		frame = proto.AppendSegmentHeader(frame, seg, len(payload))
		frame = append(frame, payload...)
		if !link.SendFrameWait(frame) {
			b.Fatalf("link died at frame %d: %v", i, link.Err())
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// registerWireBenches records the segment encode and wire saturation
// benchmarks and prints the frames/sec headline comparison.
func registerWireBenches(results map[string]Result) {
	// The zero-copy segment encode alone: frame header, segment fields,
	// payload in place, length patch — the proof target is 0 allocs/op.
	record(results, "SegmentEncode", func(b *testing.B) {
		b.ReportAllocs()
		payload := make([]byte, 4096)
		seg := proto.Segment{Player: 42, Level: 3, ActionIssued: 123456}
		var buf []byte
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seg.Seq = int64(i)
			buf = proto.BeginFrame(buf[:0], proto.TSegment)
			buf = proto.AppendSegmentHeader(buf, seg, len(payload))
			buf = append(buf, payload...)
			if err := proto.FinishFrame(buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	record(results, "WireSaturation/perframe", wireSaturationPerFrame)
	record(results, "WireSaturation/coalesced", func(b *testing.B) {
		wireSaturationCoalesced(b, nil)
	})

	base := results["WireSaturation/perframe"]
	coal := results["WireSaturation/coalesced"]
	if base.NsPerOp > 0 && coal.NsPerOp > 0 {
		fmt.Printf("WireSaturation: per-frame %.0f frames/s, coalesced %.0f frames/s (%.1fx)\n",
			1e9/base.NsPerOp, 1e9/coal.NsPerOp, base.NsPerOp/coal.NsPerOp)
	}
}

// wireSmoke runs a short coalesced transfer with instrumentation attached
// and fails unless the batching path actually engaged (the CI assertion:
// cloudfog_link_batched_frames_total > 0 under saturation).
func wireSmoke() {
	reg := obs.NewRegistry()
	stats := obs.LinkStatsIn(reg, "wire_smoke")
	r := testing.Benchmark(func(b *testing.B) {
		wireSaturationCoalesced(b, stats)
	})
	batched := stats.BatchedFrames.Load()
	fmt.Printf("wire smoke: %d frames sent, %d batched across %d batch writes (%.1f ns/op)\n",
		stats.SentFrames.Load(), batched, stats.BatchWrites.Load(),
		float64(r.T.Nanoseconds())/float64(r.N))
	if batched == 0 {
		fmt.Fprintln(os.Stderr, "cloudfog-bench: wire smoke FAILED: no frames were coalesced (cloudfog_link_batched_frames_total == 0)")
		os.Exit(1)
	}
}
