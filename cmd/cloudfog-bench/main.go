// cloudfog-bench runs the headline performance benchmarks and writes the
// results as JSON (name → ns/op, B/op, allocs/op), so the repo's perf
// trajectory is machine-readable: each perf PR commits its numbers as
// BENCH_PR<n>.json and later PRs can diff against them. Pass -baseline to
// print a recorded-vs-live comparison against a previous PR's file.
//
// The headline set mirrors the hot paths the figure sweeps ride: the event
// engine, one QoE serving node (plain and with observability attached, so
// the instrumentation overhead stays measured), and the three figure-level
// sweep simulations (Figs. 9a, 10a, 11a at bench scale).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"testing"
	"time"

	"cloudfog/internal/core"
	"cloudfog/internal/experiment"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/health"
	"cloudfog/internal/metrics"
	"cloudfog/internal/obs"
	"cloudfog/internal/qoe"
	"cloudfog/internal/sim"
	"cloudfog/internal/trace"
)

// Result is one benchmark's record in the output JSON.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

func record(out map[string]Result, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	out[name] = Result{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
	fmt.Printf("%-28s %12.1f ns/op %12d B/op %10d allocs/op\n",
		name, out[name].NsPerOp, out[name].BytesPerOp, out[name].AllocsPerOp)
}

func benchWorld() *experiment.World {
	cfg := experiment.Default(2026)
	cfg.Players = 2500
	cfg.Supernodes = 200
	cfg.EdgeServers = 20
	w, err := experiment.NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// scaleWorld is the 100k-player world the ShardedRun scaling curve uses —
// generated once, reused across shard counts (runs join and leave cleanly).
func scaleWorld() *experiment.World {
	cfg := experiment.Default(2026)
	cfg.Players = 100_000
	cfg.Supernodes = 6250
	cfg.EdgeServers = 45
	w, err := experiment.NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// scaleRunOptions is the ShardedRun benchmark's fixed scenario: two epochs
// of the scale chaos profile with the default node-sample budget.
func scaleRunOptions() experiment.RunOptions {
	return experiment.RunOptions{Horizon: 20 * time.Second, ScaleEpoch: 10 * time.Second, Detector: "phi", Overload: true}
}

// compare prints each live result against the recorded baseline.
func compare(baselinePath string, live map[string]Result) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	recorded := make(map[string]Result)
	if err := json.Unmarshal(buf, &recorded); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	names := make([]string, 0, len(live))
	for name := range live {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\ncomparison vs %s:\n", baselinePath)
	for _, name := range names {
		rec, ok := recorded[name]
		if !ok {
			fmt.Printf("%-28s %12.1f ns/op  (no recorded baseline)\n", name, live[name].NsPerOp)
			continue
		}
		delta := math.Inf(1)
		if rec.NsPerOp > 0 {
			delta = (live[name].NsPerOp - rec.NsPerOp) / rec.NsPerOp * 100
		}
		fmt.Printf("%-28s recorded %12.1f ns/op   live %12.1f ns/op   %+6.1f%%   allocs %d -> %d\n",
			name, rec.NsPerOp, live[name].NsPerOp, delta, rec.AllocsPerOp, live[name].AllocsPerOp)
	}
	return nil
}

func main() {
	outPath := flag.String("out", "BENCH_PR9.json", "output JSON path")
	baseline := flag.String("baseline", "", "recorded results to compare against (e.g. BENCH_PR2.json; empty = no comparison)")
	smoke := flag.Bool("wire-smoke", false, "run only the coalesced wire transfer and assert batching engaged (CI smoke)")
	flag.Parse()

	if *smoke {
		wireSmoke()
		return
	}

	results := make(map[string]Result)

	record(results, "EngineEvents", func(b *testing.B) {
		b.ReportAllocs()
		engine := sim.New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				engine.Schedule(time.Millisecond, tick)
			}
		}
		engine.Schedule(time.Millisecond, tick)
		b.ResetTimer()
		engine.Run()
	})

	record(results, "QoENode", func(b *testing.B) {
		b.ReportAllocs()
		g, _ := game.ByID(4)
		specs := make([]qoe.PlayerSpec, 10)
		for i := range specs {
			specs[i] = qoe.PlayerSpec{
				ID: int64(i), Game: g,
				Latency:      20 * time.Millisecond,
				InboundDelay: 20 * time.Millisecond,
			}
		}
		for i := 0; i < b.N; i++ {
			if _, err := qoe.RunNode(qoe.DefaultOptions(), 20_000_000, specs, 10*time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The same node with the full observability bundle attached: the gap
	// to QoENode is the instrumentation overhead budget.
	record(results, "QoENodeObs", func(b *testing.B) {
		b.ReportAllocs()
		g, _ := game.ByID(4)
		specs := make([]qoe.PlayerSpec, 10)
		for i := range specs {
			specs[i] = qoe.PlayerSpec{
				ID: int64(i), Game: g,
				Latency:      20 * time.Millisecond,
				InboundDelay: 20 * time.Millisecond,
			}
		}
		reg := obs.NewRegistry()
		log := obs.NewEventLog(1024)
		for i := 0; i < b.N; i++ {
			opts := qoe.DefaultOptions()
			opts.Obs = obs.NodeStatsIn(reg)
			opts.Obs.Engine = obs.EngineStatsIn(reg)
			opts.Obs.Sink = log.Sink()
			if _, err := qoe.RunNode(opts, 20_000_000, specs, 10*time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One phi detector fed a heartbeat and asked for a verdict — the
	// arithmetic both the sim monitor and the live cloud run per beat.
	record(results, "DetectorPhiBeat", func(b *testing.B) {
		b.ReportAllocs()
		det := health.NewDetector(health.DetectorConfig{Mode: health.ModePhi})
		now := time.Duration(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += time.Second
			det.Heartbeat(now)
			if det.Suspect(now + 500*time.Millisecond) {
				b.Fatal("steady heartbeats suspected")
			}
		}
	})

	// A full heartbeat monitor driving 100 nodes for one virtual minute on
	// the sim engine: heartbeat events, loss accounting, and the sorted
	// evaluation sweep — the standing overhead a detector-enabled
	// resilience figure pays.
	record(results, "HeartbeatMonitor100", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine := sim.New()
			mon := health.NewMonitor(engine, health.DetectorConfig{Mode: health.ModePhi}, nil, nil)
			for id := int64(0); id < 100; id++ {
				mon.Track(1_000_000 + id)
			}
			mon.Start()
			engine.RunUntil(time.Minute)
			if fp := mon.FalsePositives(); fp != 0 {
				b.Fatalf("%d false positives on clean heartbeats", fp)
			}
		}
	})

	// The fault subsystem's hot cycle: one supernode dies, every orphan
	// fails over (backups first), and the node re-registers — the loop the
	// churn and resilience figures spin continuously.
	record(results, "ChurnFailoverCycle", func(b *testing.B) {
		b.ReportAllocs()
		cfg := core.DefaultConfig(1)
		cfg.Locator.ErrorSigma = 0
		m := cfg.Latency.(trace.Model)
		m.NoiseMedian = 2 * time.Millisecond
		cfg.Latency = m
		center := cfg.Region.Center()
		dc := core.NewDatacenter(2_000_000, geo.Point{X: center.X + 1200, Y: center.Y}, cfg.DCEgress)
		const nSN = 30
		type snSpec struct {
			id  int64
			pos geo.Point
		}
		specs := make([]snSpec, nSN)
		sns := make([]*core.Supernode, nSN)
		for i := range sns {
			specs[i] = snSpec{id: 1_000_000 + int64(i), pos: geo.Point{X: center.X + float64(i*15), Y: center.Y + 10}}
			sns[i] = core.NewSupernode(specs[i].id, specs[i].pos, 8, 8*cfg.UplinkPerSlot)
		}
		fog, err := core.BuildFog(cfg, []*core.Datacenter{dc}, sns, sim.NewRand(7))
		if err != nil {
			b.Fatal(err)
		}
		g, _ := game.ByID(5)
		for i := 0; i < 120; i++ {
			p := &core.Player{
				ID:   int64(10_000 + i),
				Pos:  geo.Point{X: center.X + float64(i%40), Y: center.Y + float64(i%25)},
				Game: g, Downlink: 20_000_000,
			}
			fog.Join(p)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			sp := specs[n%nSN]
			for _, orphan := range fog.FailSupernode(sp.id) {
				fog.Failover(orphan)
			}
			if err := fog.RegisterSupernode(core.NewSupernode(sp.id, sp.pos, 8, 8*cfg.UplinkPerSlot)); err != nil {
				b.Fatal(err)
			}
		}
	})

	w := benchWorld()
	record(results, "Fig9aContinuitySim", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.ContinuityVsPlayers(w, []int{400}, 8*time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})
	record(results, "Fig10aAdaptationSim", func(b *testing.B) {
		b.ReportAllocs()
		var series []metrics.Series
		for i := 0; i < b.N; i++ {
			var err error
			series, err = experiment.AdaptationEffect(w, []int{5, 30}, 40*time.Second)
			if err != nil {
				b.Fatal(err)
			}
		}
		_ = series
	})
	record(results, "Fig11aSchedulingSim", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.SchedulingEffect(w, []int{5, 30}, 40*time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The sharded single-run scaling curve: the same 100k-player world run
	// end-to-end at 1, 2, 4, and 8 shards. On a multi-core host the curve
	// falls with the shard count; on a single-CPU host it stays flat (the
	// goroutines time-slice one core) and what the record proves is that
	// the parallel path costs no more than the serial one.
	sw := scaleWorld()
	for _, shards := range []int{1, 2, 4, 8} {
		sw.Cfg.Shards = shards
		name := fmt.Sprintf("ShardedRun/shards=%d", shards)
		record(results, name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := experiment.ScaleRun(sw, scaleRunOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	registerWireBenches(results)
	registerCoordBenches(results)
	registerFlightBenches(results)

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *outPath)

	if *baseline != "" {
		if err := compare(*baseline, results); err != nil {
			fmt.Fprintln(os.Stderr, "cloudfog-bench:", err)
			os.Exit(1)
		}
	}
}
