package main

import (
	"fmt"
	"testing"
	"time"

	"cloudfog/internal/flight"
)

// flightSpec is the fixed recording scenario the flight benchmarks run: a
// bench-scale sharded scaling incident under the phi detector with the
// overload ladder — the same shape as the ShardedRun benchmark, small
// enough to iterate.
func flightSpec() flight.RunSpec {
	return flight.RunSpec{
		Seed:        2026,
		Players:     2500,
		Supernodes:  200,
		Datacenters: 5,
		Shards:      2,
		Horizon:     20 * time.Second,
		Epoch:       10 * time.Second,
		Detector:    "phi",
		Overload:    true,
		Figures:     []string{"figscale"},
	}
}

// registerFlightBenches measures what the flight recorder costs on top of
// the run it captures. FlightRun is the uninstrumented-recorder baseline
// (the identical spec executed without capturing), FlightRecordOverhead is
// the full Record path (canonical encodings, schedule marshalling, chunk
// framing included), and FlightReplay is the verification re-run against a
// prebuilt recording. The Record/Run gap is the recording overhead budget
// the ISSUE caps; it is printed explicitly after the three records.
func registerFlightBenches(out map[string]Result) {
	spec, err := flightSpec().Normalize()
	if err != nil {
		panic(err)
	}

	record(out, "FlightRun", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := spec.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})

	record(out, "FlightRecordOverhead", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec, err := flight.Record(spec)
			if err != nil {
				b.Fatal(err)
			}
			if len(flight.Encode(rec)) == 0 {
				b.Fatal("empty recording")
			}
		}
	})

	rec, err := flight.Record(spec)
	if err != nil {
		panic(err)
	}
	record(out, "FlightReplay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := rec.Replay("")
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Identical() {
				b.Fatal("bench replay diverged")
			}
		}
	})

	run, recd := out["FlightRun"].NsPerOp, out["FlightRecordOverhead"].NsPerOp
	if run > 0 {
		fmt.Printf("%-28s %+11.2f%% (record vs plain instrumented run)\n",
			"FlightOverheadPct", (recd-run)/run*100)
	}
}
