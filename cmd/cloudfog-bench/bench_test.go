package main

import (
	"sync"
	"testing"

	"cloudfog/internal/experiment"
)

var (
	scaleWorldOnce sync.Once
	scaleWorldMem  *experiment.World
)

func sharedScaleWorld() *experiment.World {
	scaleWorldOnce.Do(func() { scaleWorldMem = scaleWorld() })
	return scaleWorldMem
}

// BenchmarkShardedRun mirrors the cloudfog-bench binary's ShardedRun curve
// for `go test -bench`: one full scaling run (100k players, two epochs of
// the scale chaos profile) at each shard count. On a single-CPU host the
// curve is flat; on k cores the data-plane phase shrinks toward 1/k.
func BenchmarkShardedRun(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "shards=1", 2: "shards=2", 4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			w := sharedScaleWorld()
			w.Cfg.Shards = shards
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := experiment.ScaleRun(w, scaleRunOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
