package main

import (
	"fmt"
	"testing"
	"time"

	"cloudfog/internal/coord"
	"cloudfog/internal/health"
	"cloudfog/internal/proto"
)

// registerCoordBenches records the coordinator placement hot path:
// PlacementThroughput is one Place → ticket issue (spatial shortlist,
// overload admission, ring assembly, HMAC signing) against a registered
// worker fleet, with the session departed again so the fleet never fills.
func registerCoordBenches(results map[string]Result) {
	record(results, "PlacementThroughput", func(b *testing.B) {
		b.ReportAllocs()
		const workers = 64
		p, err := coord.NewPlacer(coord.PlacerConfig{
			Detector:  health.DetectorConfig{Mode: health.ModePhi, Interval: 100 * time.Millisecond},
			TicketKey: []byte("bench-key"),
		})
		if err != nil {
			b.Fatal(err)
		}
		now := time.Duration(0)
		for i := int64(1); i <= workers; i++ {
			p.Register(now, proto.Register{
				Worker:   i,
				Capacity: 1 << 30,
				X:        float64((i * 1237) % 10_000),
				Y:        float64((i * 4099) % 10_000),
				Addr:     fmt.Sprintf("10.0.0.%d:9000", i),
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += time.Microsecond
			player := int64(100_000 + i)
			t, ok := p.Place(now, proto.Place{
				Player: player,
				GameID: 1,
				X:      float64((i * 733) % 10_000),
				Y:      float64((i * 271) % 10_000),
			})
			if !ok || t.Worker == 0 {
				b.Fatalf("placement %d failed (ok=%v worker=%d)", i, ok, t.Worker)
			}
			p.Depart(player)
		}
	})
}
