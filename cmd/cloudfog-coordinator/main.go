// Command cloudfog-coordinator runs the CloudFog control plane: workers
// (supernodes started with coord_addr) register with it and stream
// occupancy reports, players ask it for placement, and it hands out signed
// session tickets naming the serving worker and its backup ring. Worker
// deaths are detected by phi-accrual detectors over the report stream; the
// stranded sessions are re-placed and fresh tickets pushed to the players.
//
// Standalone mode serves until SIGINT/SIGTERM and then (with -report)
// writes the session-ledger reconciliation as JSON:
//
//	cloudfog-coordinator -config coordinator.json -report ledger.json
//
// Demo mode spins up a full local deployment in one process — cloud,
// coordinator, -workers workers, -players streaming players — kills one
// worker mid-stream, waits for every stranded session to re-place, and
// exits non-zero unless the ledger reconciles:
//
//	cloudfog-coordinator -demo -workers 3 -players 6 -duration 4s -report ledger.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"cloudfog/internal/coord"
	"cloudfog/internal/health"
	"cloudfog/internal/live"
)

var (
	configFlag   = flag.String("config", "", "coordinator config JSON path (role \"coordinator\")")
	addrFlag     = flag.String("addr", "127.0.0.1:0", "listen address when no -config is given")
	cloudFlag    = flag.String("cloud-addr", "", "cloud address for cloud-direct fallback tickets")
	keyFlag      = flag.String("ticket-key", "", "shared HMAC key for ticket signing (empty = unsigned)")
	reportFlag   = flag.String("report", "", "write the ledger reconciliation JSON here on exit (\"-\" = stdout)")
	demoFlag     = flag.Bool("demo", false, "run the local churn demo instead of serving")
	workersFlag  = flag.Int("workers", 3, "demo: worker count")
	playersFlag  = flag.Int("players", 6, "demo: player count")
	durationFlag = flag.Duration("duration", 4*time.Second, "demo: player session length")
	intervalFlag = flag.Duration("interval", 100*time.Millisecond, "failure-detector heartbeat interval")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-coordinator:", err)
		os.Exit(1)
	}
}

func coordinatorConfig() (live.Config, error) {
	if *configFlag != "" {
		blob, err := os.ReadFile(*configFlag)
		if err != nil {
			return live.Config{}, err
		}
		var cfg live.Config
		if err := json.Unmarshal(blob, &cfg); err != nil {
			return live.Config{}, fmt.Errorf("config %s: %w", *configFlag, err)
		}
		if cfg.Role == "" {
			cfg.Role = live.RoleCoordinator
		}
		return cfg, cfg.Validate()
	}
	cfg := live.Config{
		Role:      live.RoleCoordinator,
		Addr:      *addrFlag,
		CloudAddr: *cloudFlag,
		TicketKey: *keyFlag,
		Detector:  health.DetectorConfig{Mode: health.ModePhi, Interval: *intervalFlag},
	}
	return cfg, cfg.Validate()
}

func writeReport(c *coord.Coordinator) error {
	if *reportFlag == "" {
		return nil
	}
	if *reportFlag == "-" {
		return c.WriteReport(os.Stdout)
	}
	f, err := os.Create(*reportFlag)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteReport(f)
}

func run() error {
	if *demoFlag {
		return demo()
	}
	cfg, err := coordinatorConfig()
	if err != nil {
		return err
	}
	c, err := coord.StartCoordinator(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("coordinator on %s (detector bound %v)\n", c.Addr(), c.Bound())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	return writeReport(c)
}

// demo is the `make coord` smoke: a full local deployment with one worker
// killed mid-stream. It fails unless every stranded session re-places and
// the ledger reconciles.
func demo() error {
	cloud, err := live.NewCloud(live.Config{
		Role: live.RoleCloud, Addr: "127.0.0.1:0",
		Tick: 20 * time.Millisecond, DirectFPS: 10,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()

	cfg := live.Config{
		Role: live.RoleCoordinator, Addr: *addrFlag,
		CloudAddr: cloud.Addr(), TicketKey: *keyFlag,
		Detector: health.DetectorConfig{Mode: health.ModePhi, Interval: *intervalFlag},
	}
	if cfg.TicketKey == "" {
		cfg.TicketKey = "demo-key"
	}
	c, err := coord.StartCoordinator(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("coordinator on %s (detector bound %v)\n", c.Addr(), c.Bound())

	workers := make([]*coord.Worker, *workersFlag)
	for i := range workers {
		id := int64(i + 1)
		w, err := coord.StartWorker(live.Config{
			Role: live.RoleSupernode, ID: id, Addr: "127.0.0.1:0",
			CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
			FPS:      30,
			X:        float64(1500 + (i%3)*3500),
			Y:        float64(2500 + (i/3)*5000),
			Capacity: 16, ReportEvery: 50 * time.Millisecond,
		})
		if err != nil {
			return fmt.Errorf("worker %d: %w", id, err)
		}
		defer w.Close()
		workers[i] = w
		fmt.Printf("worker %d on %s\n", id, w.Addr())
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.WorkersAlive() < len(workers) {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d/%d workers registered", c.WorkersAlive(), len(workers))
		}
		time.Sleep(20 * time.Millisecond)
	}

	var wg sync.WaitGroup
	errs := make([]error, *playersFlag)
	for i := 0; i < *playersFlag; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, tk, err := coord.RunSession(context.Background(), live.Config{
				Role: live.RolePlayer, ID: int64(600 + i), GameID: 1,
				CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
				TicketKey: cfg.TicketKey,
				X:         float64(1000 + i*1500), Y: 3000,
			}, *durationFlag)
			errs[i] = err
			if err == nil {
				fmt.Printf("player %d: worker %d, %d segments, %d failovers\n",
					600+i, tk.Worker, rep.Segments, rep.Failovers)
			}
		}(i)
	}

	// Kill one worker a quarter into the run: its report loop and supernode
	// stop, the detector declares it dead, and its sessions re-place.
	time.Sleep(*durationFlag / 4)
	victim := workers[0]
	fmt.Printf("killing worker %d mid-stream\n", victim.ID())
	victim.Close()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("player %d: %w", 600+i, err)
		}
	}
	// Sessions have departed; reconcile.
	deadline = time.Now().Add(5 * time.Second)
	for {
		l := c.Ledger()
		if l.ActiveOriginal+l.ActiveReplaced == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sessions never departed: %+v", l)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := writeReport(c); err != nil {
		return err
	}
	l := c.Ledger()
	fmt.Printf("ledger: %d placed, %d re-placed, %d departed, %d rejected, workers lost %d\n",
		l.Placements, l.Replacements, l.Departed, l.Rejected, l.WorkersLost)
	if !l.Balanced() {
		return fmt.Errorf("ledger does not reconcile: %+v", l)
	}
	if l.Replacements == 0 {
		return fmt.Errorf("no sessions were re-placed after the worker kill")
	}
	return nil
}
