// Command cloudfog-coordinator runs the CloudFog control plane: workers
// (supernodes started with coord_addr) register with it and stream
// occupancy reports, players ask it for placement, and it hands out signed
// session tickets naming the serving worker and its backup ring. Worker
// deaths are detected by phi-accrual detectors over the report stream; the
// stranded sessions are re-placed and fresh tickets pushed to the players.
//
// Standalone mode serves until SIGINT/SIGTERM and then (with -report)
// writes the session-ledger reconciliation as JSON:
//
//	cloudfog-coordinator -config coordinator.json -report ledger.json
//
// Demo mode spins up a full local deployment in one process — cloud,
// coordinator, -workers workers, -players streaming players — kills one
// worker mid-stream, waits for every stranded session to re-place, and
// exits non-zero unless the ledger reconciles:
//
//	cloudfog-coordinator -demo -workers 3 -players 6 -duration 4s -report ledger.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"cloudfog/internal/coord"
	"cloudfog/internal/health"
	"cloudfog/internal/live"
)

var (
	configFlag   = flag.String("config", "", "coordinator config JSON path (role \"coordinator\")")
	addrFlag     = flag.String("addr", "127.0.0.1:0", "listen address when no -config is given")
	cloudFlag    = flag.String("cloud-addr", "", "cloud address for cloud-direct fallback tickets")
	keyFlag      = flag.String("ticket-key", "", "shared HMAC key for ticket signing (empty = unsigned)")
	reportFlag   = flag.String("report", "", "write the ledger reconciliation JSON here on exit (\"-\" = stdout)")
	demoFlag     = flag.Bool("demo", false, "run the local churn demo instead of serving")
	workersFlag  = flag.Int("workers", 3, "demo: worker count")
	playersFlag  = flag.Int("players", 6, "demo: player count")
	durationFlag = flag.Duration("duration", 4*time.Second, "demo: player session length")
	intervalFlag = flag.Duration("interval", 100*time.Millisecond, "failure-detector heartbeat interval")
	leaseFlag    = flag.Duration("lease", 0, "ticket lease TTL (0 disables leases)")
	drainFlag    = flag.Bool("drain", false, "demo: SIGTERM-drain a worker instead of killing it — fails on any stream interruption")
	drainTOFlag  = flag.Duration("drain-timeout", 0, "demo: worker drain deadline (0 = default)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-coordinator:", err)
		os.Exit(1)
	}
}

func coordinatorConfig() (live.Config, error) {
	if *configFlag != "" {
		blob, err := os.ReadFile(*configFlag)
		if err != nil {
			return live.Config{}, err
		}
		var cfg live.Config
		if err := json.Unmarshal(blob, &cfg); err != nil {
			return live.Config{}, fmt.Errorf("config %s: %w", *configFlag, err)
		}
		if cfg.Role == "" {
			cfg.Role = live.RoleCoordinator
		}
		return cfg, cfg.Validate()
	}
	cfg := live.Config{
		Role:      live.RoleCoordinator,
		Addr:      *addrFlag,
		CloudAddr: *cloudFlag,
		TicketKey: *keyFlag,
		Detector:  health.DetectorConfig{Mode: health.ModePhi, Interval: *intervalFlag},
		LeaseTTL:  *leaseFlag,
	}
	return cfg, cfg.Validate()
}

func writeReport(c *coord.Coordinator) error {
	if *reportFlag == "" {
		return nil
	}
	if *reportFlag == "-" {
		return c.WriteReport(os.Stdout)
	}
	f, err := os.Create(*reportFlag)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteReport(f)
}

func run() error {
	if *demoFlag {
		return demo()
	}
	cfg, err := coordinatorConfig()
	if err != nil {
		return err
	}
	c, err := coord.StartCoordinator(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("coordinator on %s (detector bound %v)\n", c.Addr(), c.Bound())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	return writeReport(c)
}

// demo is the `make coord` smoke: a full local deployment with one worker
// taken out mid-stream. The default mode kills the worker abruptly and
// fails unless every stranded session re-places and the ledger reconciles.
// With -drain the worker is SIGTERM-drained instead (`make coord-drain`):
// every session on it must hand off make-before-break — the demo fails on
// any visible stream interruption — and the drain must complete within the
// detector Bound().
func demo() error {
	cloud, err := live.NewCloud(live.Config{
		Role: live.RoleCloud, Addr: "127.0.0.1:0",
		Tick: 20 * time.Millisecond, DirectFPS: 10,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()

	cfg := live.Config{
		Role: live.RoleCoordinator, Addr: *addrFlag,
		CloudAddr: cloud.Addr(), TicketKey: *keyFlag,
		Detector: health.DetectorConfig{Mode: health.ModePhi, Interval: *intervalFlag},
		LeaseTTL: *leaseFlag,
	}
	if cfg.TicketKey == "" {
		cfg.TicketKey = "demo-key"
	}
	c, err := coord.StartCoordinator(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("coordinator on %s (detector bound %v, lease %v)\n", c.Addr(), c.Bound(), *leaseFlag)

	workers := make([]*coord.Worker, *workersFlag)
	for i := range workers {
		id := int64(i + 1)
		w, err := coord.StartWorker(live.Config{
			Role: live.RoleSupernode, ID: id, Addr: "127.0.0.1:0",
			CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
			TicketKey: cfg.TicketKey,
			FPS:       30,
			X:         float64(1500 + (i%3)*3500),
			Y:         float64(2500 + (i/3)*5000),
			Capacity:  16, ReportEvery: 50 * time.Millisecond,
			DrainTimeout: *drainTOFlag,
		})
		if err != nil {
			return fmt.Errorf("worker %d: %w", id, err)
		}
		defer w.Close()
		workers[i] = w
		fmt.Printf("worker %d on %s\n", id, w.Addr())
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.WorkersAlive() < len(workers) {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d/%d workers registered", c.WorkersAlive(), len(workers))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Open every session first so the drain mode can see who is placed on
	// the victim before the run starts.
	type run struct {
		id   int64
		sess *coord.Session
		rep  live.PlayerReport
		err  error
	}
	runs := make([]*run, *playersFlag)
	for i := range runs {
		r := &run{id: int64(600 + i)}
		r.sess, r.err = coord.OpenSession(context.Background(), live.Config{
			Role: live.RolePlayer, ID: r.id, GameID: 1,
			CloudAddr: cloud.Addr(), CoordAddr: c.Addr(),
			TicketKey: cfg.TicketKey,
			X:         float64(1000 + i*1500), Y: 3000,
		})
		if r.err != nil {
			return fmt.Errorf("player %d session: %w", r.id, r.err)
		}
		defer r.sess.Close()
		runs[i] = r
	}
	var wg sync.WaitGroup
	for _, r := range runs {
		wg.Add(1)
		go func(r *run) {
			defer wg.Done()
			r.rep, r.err = r.sess.Run(*durationFlag)
		}(r)
	}

	// Take one worker out a quarter into the run.
	time.Sleep(*durationFlag / 4)
	victim := workers[0]
	affected := 0
	for _, r := range runs {
		if r.sess.Ticket().Worker == victim.ID() {
			affected++
		}
	}
	if *drainFlag {
		fmt.Printf("draining worker %d mid-stream (%d sessions)\n", victim.ID(), affected)
		began := time.Now()
		drained := victim.Drain()
		took := time.Since(began)
		if !drained {
			return fmt.Errorf("worker %d did not empty before its drain deadline", victim.ID())
		}
		if took > c.Bound() {
			return fmt.Errorf("drain took %v, beyond detector bound %v", took, c.Bound())
		}
		fmt.Printf("worker %d drained in %v (bound %v)\n", victim.ID(), took, c.Bound())
	} else {
		fmt.Printf("killing worker %d mid-stream\n", victim.ID())
		victim.Close()
	}
	wg.Wait()

	var handoffs, failovers int64
	for _, r := range runs {
		if r.err != nil {
			return fmt.Errorf("player %d: %w", r.id, r.err)
		}
		fmt.Printf("player %d: worker %d, %d segments, %d failovers, %d handoffs\n",
			r.id, r.sess.Ticket().Worker, r.rep.Segments, r.rep.Failovers, r.rep.Handoffs)
		handoffs += r.rep.Handoffs
		failovers += r.rep.Failovers
		r.sess.Close()
	}

	// Sessions have departed; reconcile.
	deadline = time.Now().Add(5 * time.Second)
	for {
		l := c.Ledger()
		if l.ActiveOriginal+l.ActiveReplaced == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sessions never departed: %+v", l)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := writeReport(c); err != nil {
		return err
	}
	l := c.Ledger()
	fmt.Printf("ledger: %d placed, %d re-placed, %d renewed, %d departed, %d expired, %d rejected, workers lost %d, drains %d/%d sessions\n",
		l.Placements, l.Replacements, l.Renewals, l.Departed, l.Expired, l.Rejected, l.WorkersLost, l.DrainWorkers, l.DrainSessions)
	if !l.Balanced() {
		return fmt.Errorf("ledger does not reconcile: %+v", l)
	}
	if *drainFlag {
		if failovers != 0 {
			return fmt.Errorf("%d visible stream interruptions during a drain — handoffs must be make-before-break", failovers)
		}
		if affected > 0 && int(handoffs) < affected {
			return fmt.Errorf("only %d handoffs for %d drained sessions", handoffs, affected)
		}
		if l.DrainSessions == 0 {
			return fmt.Errorf("ledger recorded no drained sessions")
		}
	} else if l.Replacements == 0 {
		return fmt.Errorf("no sessions were re-placed after the worker kill")
	}
	return nil
}
