// Command cloudfog-replay inspects, verifies, and counterfactually diffs
// flight recordings produced by cloudfog-sim -record.
//
// With only a recording argument it describes the file (spec, figures,
// schedule checksums, world fingerprint) and re-runs it, failing with a
// non-zero exit on any byte or ledger divergence — the regression-corpus
// gate `make replay` runs. -from starts the verification at a recorded
// figure checkpoint; -describe skips the re-run.
//
// -whatif re-runs the recording with exactly one knob overridden (detector
// kind, shard count, bandwidth scale, population, …) and prints the
// structured QoE diff against the recorded baseline, reconciling both
// sides' observability ledgers first. -expect-diff makes an empty diff an
// error; -json writes the diff (or replay report) to a file.
//
// Usage:
//
//	cloudfog-replay examples/flight/chaos.flight
//	cloudfog-replay -from figscale examples/flight/sharded.flight
//	cloudfog-replay -describe examples/flight/chaos.flight
//	cloudfog-replay -whatif detector=phi -expect-diff examples/flight/chaos.flight
//	cloudfog-replay -whatif bandwidth=0.5 -json diff.json examples/flight/sharded.flight
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cloudfog/internal/flight"
)

var (
	describeFlag   = flag.Bool("describe", false, "print the recording's contents without re-running it")
	fromFlag       = flag.String("from", "", "start the replay at this recorded figure checkpoint")
	whatifFlag     = flag.String("whatif", "", "override one knob (key=value) and diff against the recorded baseline")
	expectDiffFlag = flag.Bool("expect-diff", false, "with -whatif: exit non-zero if the override changes nothing observable")
	jsonFlag       = flag.String("json", "", "write the replay report or what-if diff as JSON to this file")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cloudfog-replay [flags] recording.flight")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-replay:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	rec, err := flight.Load(path)
	if err != nil {
		return err
	}
	describe(path, rec)
	if *describeFlag {
		return nil
	}
	if *whatifFlag != "" {
		return whatif(rec)
	}
	return verify(path, rec)
}

// describe prints the recording's inventory.
func describe(path string, rec *flight.Recording) {
	fmt.Printf("%s: flight recording v%d\n", path, rec.Version)
	fmt.Printf("  spec:  %s\n", rec.Spec.Summary())
	fmt.Printf("  world: fingerprint %08x\n", rec.WorldFP)
	for _, sc := range rec.Schedules {
		fmt.Printf("  schedule %-12s %6d bytes, crc %08x\n", sc.Label, len(sc.Bytes), sc.Checksum)
	}
	for _, fc := range rec.Figures {
		fmt.Printf("  figure %-12s %6d bytes, obs delta %d counters", fc.Name, len(fc.FigBytes), len(fc.ObsDelta.Counters))
		if len(fc.RNG) > 0 {
			var draws uint64
			for _, s := range fc.RNG {
				draws += s.Draws
			}
			fmt.Printf(", %d RNG streams (%d draws)", len(fc.RNG), draws)
		}
		fmt.Println()
	}
	fmt.Printf("  final: %d counters, %d histograms\n", len(rec.Final.Counters), len(rec.Final.Histograms))
}

// verify re-runs the recording and fails on any divergence.
func verify(path string, rec *flight.Recording) error {
	rep, err := rec.Replay(*fromFlag)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	if *jsonFlag != "" {
		if err := writeJSON(*jsonFlag, rep); err != nil {
			return err
		}
	}
	if !rep.Identical() {
		return fmt.Errorf("replay of %s diverged from the recording", path)
	}
	if err := flight.Reconcile(rec.Final).Err(); err != nil {
		return err
	}
	fmt.Println("ledgers: balanced")
	return nil
}

// whatif runs the counterfactual and prints the diff.
func whatif(rec *flight.Recording) error {
	d, err := rec.WhatIf(*whatifFlag, "")
	if err != nil {
		return err
	}
	d.WriteText(os.Stdout)
	if *jsonFlag != "" {
		if err := writeJSON(*jsonFlag, d); err != nil {
			return err
		}
	}
	if *expectDiffFlag && d.Empty() {
		return fmt.Errorf("what-if %s changed nothing observable", *whatifFlag)
	}
	return nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("JSON written to %s\n", path)
	return nil
}
