// Command cloudfog-testbed regenerates the CloudFog paper's PlanetLab
// figures (6a, 6b, 7b, 8b) on the loopback-TCP testbed: every node is a
// real TCP server, wide-area delays are injected per pair, and all
// latencies entering the experiments are measured round trips.
//
// Default scale follows the paper's PlanetLab setup proportions: 750 nodes,
// 300 of them supernode-capable, 2 main datacenters. Real probes sleep
// their injected delays, so larger populations take longer to prewarm.
//
// Usage:
//
//	cloudfog-testbed
//	cloudfog-testbed -players 200 -supernodes 80 -parallel 256
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudfog/internal/experiment"
	"cloudfog/internal/metrics"
	"cloudfog/internal/testbed"
	"cloudfog/internal/trace"
)

var (
	seedFlag       = flag.Int64("seed", 2026, "experiment seed")
	playersFlag    = flag.Int("players", 750, "population size (PlanetLab run: 750)")
	supernodesFlag = flag.Int("supernodes", 300, "supernodes selected from capable players (PlanetLab run: 300)")
	dcsFlag        = flag.Int("datacenters", 2, "default number of main datacenters (PlanetLab run: 2)")
	serversFlag    = flag.Int("servers", 8, "EdgeCloud servers (PlanetLab run: 8)")
	parallelFlag   = flag.Int("parallel", 256, "concurrent prewarm probes")
	workersFlag    = flag.Int("sweep-workers", 0, "sweep worker pool size: 0 = one per CPU, 1 = serial")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-testbed:", err)
		os.Exit(1)
	}
}

func reqs() []time.Duration {
	return []time.Duration{
		30 * time.Millisecond, 50 * time.Millisecond, 70 * time.Millisecond,
		90 * time.Millisecond, 110 * time.Millisecond,
	}
}

func run() error {
	cfg := experiment.Default(*seedFlag)
	cfg.Players = *playersFlag
	cfg.Supernodes = *supernodesFlag
	cfg.Datacenters = *dcsFlag
	cfg.EdgeServers = *serversFlag
	cfg.SweepWorkers = *workersFlag
	// The paper's PlanetLab population: 300 of 750 nodes could act as
	// supernodes, a much higher capable fraction than the simulation's 10%.
	cfg.Workload.SupernodeFraction = 0.45

	w, err := experiment.NewWorld(cfg)
	if err != nil {
		return err
	}

	model, ok := cfg.Core.Latency.(trace.Model)
	if !ok {
		return fmt.Errorf("testbed needs a trace.Model to inject delays from")
	}
	eps := w.Endpoints()
	fmt.Printf("CloudFog testbed — starting %d loopback-TCP nodes (seed %d)\n", len(eps), cfg.Seed)
	cluster, err := testbed.Start(model, eps)
	if err != nil {
		return err
	}
	defer cluster.Close()

	start := time.Now()
	// Prewarm the full player-supernode matrix: the geolocated shortlist
	// can pick any supernode, and a cache miss during assignment costs a
	// serial wide-area probe.
	pairs := w.ProbePairs(cfg.Supernodes)
	fmt.Printf("prewarming %d pairs with %d parallel probes...\n", len(pairs), *parallelFlag)
	cluster.Prewarm(pairs, *parallelFlag)
	fmt.Printf("prewarmed in %v (%d probes)\n\n", time.Since(start).Round(time.Millisecond), cluster.Probes())
	w.UseLatencySource(cluster)

	dcSweep := []int{1, 2, 4, 6, 8}
	series, err := experiment.CoverageVsDatacenters(w, dcSweep, reqs())
	if err != nil {
		return err
	}
	fmt.Println("Figure 6(a): user coverage vs number of datacenters (testbed)")
	fmt.Println(metrics.Table("#datacenters", series))

	snSweep := []int{0, cfg.Supernodes / 4, cfg.Supernodes / 2, cfg.Supernodes}
	series, err = experiment.CoverageVsSupernodes(w, snSweep, reqs())
	if err != nil {
		return err
	}
	fmt.Printf("Figure 6(b): user coverage vs number of supernodes (%d datacenters, testbed)\n", cfg.Datacenters)
	fmt.Println(metrics.Table("#supernodes", series))

	counts := []int{cfg.Players / 4, cfg.Players / 2, cfg.Players}
	series, err = experiment.BandwidthVsPlayers(w, counts)
	if err != nil {
		return err
	}
	fmt.Println("Figure 7(b): cloud bandwidth consumption (Mbit/s) vs players (testbed)")
	fmt.Println(metrics.Table("#players", series))

	results, err := experiment.ResponseLatency(w)
	if err != nil {
		return err
	}
	fmt.Println("Figure 8(b): average response latency per player (testbed)")
	for _, r := range results {
		fmt.Printf("  %-12s mean=%-8v median=%-8v p90=%v\n",
			r.System, r.Mean.Round(time.Millisecond),
			r.Median.Round(time.Millisecond), r.P90.Round(time.Millisecond))
	}
	series, err = experiment.ContinuityVsPlayers(w, []int{cfg.Players / 4, cfg.Players / 2, cfg.Players}, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9(b): average playback continuity vs concurrent players (testbed latencies)")
	fmt.Println(metrics.Table("#players", series))

	series, err = experiment.AdaptationEffect(w, []int{5, 15, 25, 30}, 60*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("Figure 10(b): satisfied players, with/without rate adaptation (testbed latencies)")
	fmt.Println(metrics.Table("players/SN", series))

	series, err = experiment.SchedulingEffect(w, []int{5, 15, 25, 30}, 60*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("Figure 11(b): satisfied players, with/without deadline scheduling (testbed latencies)")
	fmt.Println(metrics.Table("players/SN", series))

	fmt.Printf("total TCP probes: %d, model fallbacks: %d\n", cluster.Probes(), cluster.Fallbacks())
	return nil
}
