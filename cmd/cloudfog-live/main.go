// Command cloudfog-live runs an actual CloudFog deployment on this machine:
// a cloud server owning the authoritative game world, fog supernodes keeping
// replicas via the update stream, and player clients issuing actions and
// receiving rendered video segments — all over real TCP connections with
// wide-area delays injected per link from the synthetic latency trace.
//
// It prints each player's measured end-to-end response latency (action →
// first segment reflecting it) against its game's requirement, plus the
// update-vs-video bandwidth ledger that motivates the whole design.
//
// With -metrics-addr the process serves a Prometheus-style text exposition
// of every link's frame/byte/delay instruments at /metrics for the lifetime
// of the run.
//
// The bare invocation (flat flags) runs the all-in-one local demo. The role
// subcommands run a single role from a serializable live.Config, so the same
// binary deploys each process of a real multi-machine topology:
//
//	cloudfog-live cloud     -config cloud.json
//	cloudfog-live supernode -config worker.json   (coord_addr ⇒ worker mode)
//	cloudfog-live player    -config player.json -duration 10s
//
// Usage:
//
//	cloudfog-live
//	cloudfog-live -players 8 -supernodes 2 -duration 5s
//	cloudfog-live -metrics-addr 127.0.0.1:9100
//	cloudfog-live <cloud|supernode|player> -config <json>
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"cloudfog/internal/fault"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/health"
	"cloudfog/internal/live"
	"cloudfog/internal/obs"
	"cloudfog/internal/sim"
	"cloudfog/internal/trace"
	"cloudfog/internal/world"
)

// defaultLiveChaos is the built-in -chaos profile, scaled to the session
// length: one supernode dies and recovers each quarter of the run, with a
// mid-run latency spike and loss burst on every stream.
func defaultLiveChaos(seed int64, duration time.Duration) *fault.Profile {
	q := duration / 4
	return &fault.Profile{
		Name:     "live-default",
		Seed:     seed,
		Duration: fault.Dur(duration),
		Specs: []fault.Spec{
			{Kind: fault.KindCrash, Period: fault.Dur(q), MTTR: fault.Dur(q),
				Detect: fault.Dur(100 * time.Millisecond)},
			{Kind: fault.KindLatency, MeanGood: fault.Dur(duration / 3),
				MeanBad: fault.Dur(duration / 6), Extra: fault.Dur(30 * time.Millisecond)},
			{Kind: fault.KindLoss, MeanGood: fault.Dur(duration / 3),
				MeanBad: fault.Dur(duration / 8), LossFrac: 0.1},
		},
	}
}

var (
	playersFlag    = flag.Int("players", 6, "number of live player clients")
	supernodesFlag = flag.Int("supernodes", 4, "number of live supernodes")
	durationFlag   = flag.Duration("duration", 4*time.Second, "session length")
	seedFlag       = flag.Int64("seed", 7, "latency landscape seed")
	fpsFlag        = flag.Int("fps", 30, "video frame rate")
	metricsFlag    = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address (e.g. 127.0.0.1:9100; empty = disabled)")
	chaosFlag      = flag.String("chaos", "", "chaos mode: fault profile JSON path, or \"default\" for a built-in profile scaled to -duration")
	detectorFlag   = flag.String("detector", "", "cloud-side failure detector fed by supernode heartbeats: timeout or phi (empty = disabled)")
	heartbeatFlag  = flag.Duration("heartbeat", 250*time.Millisecond, "supernode heartbeat period when -detector is set")
	transportFlag  = flag.String("transport", live.TransportTCP, "supernode→player stream transport: tcp (reliable, coalesced writes) or udp (datagrams, stale frames dropped)")
)

func main() {
	// Role subcommands first; anything else is the legacy flat-flag demo.
	if len(os.Args) > 1 {
		if role, err := live.ParseRole(os.Args[1]); err == nil {
			if err := runRole(role, os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "cloudfog-live %s: %v\n", role, err)
				os.Exit(1)
			}
			return
		}
	}
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfog-live:", err)
		os.Exit(1)
	}
}

// startMetrics serves the registry's Prometheus exposition at /metrics on
// addr until the process exits. It returns the bound address.
func startMetrics(addr string, reg *obs.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

func run() error {
	model := trace.DefaultModel(*seedFlag)
	placer := geo.DefaultUSPlacer()
	rng := sim.NewRand(*seedFlag + 1)

	var reg *obs.Registry
	if *metricsFlag != "" {
		reg = obs.NewRegistry()
		addr, err := startMetrics(*metricsFlag, reg)
		if err != nil {
			return err
		}
		fmt.Printf("metrics on http://%s/metrics\n", addr)
	}

	// Endpoints: one datacenter, the supernodes, the players.
	dcEP := trace.Endpoint{ID: 2_000_000, Pos: geo.USRegion().Center(), Class: trace.ClassDatacenter}
	snEPs := make([]trace.Endpoint, *supernodesFlag)
	for i := range snEPs {
		snEPs[i] = trace.Endpoint{ID: trace.NodeID(1_000_000 + i), Pos: placer.Place(rng), Class: trace.ClassSupernode}
	}
	playerEPs := make([]trace.Endpoint, *playersFlag)
	for i := range playerEPs {
		playerEPs[i] = trace.Endpoint{ID: trace.NodeID(i + 1), Pos: placer.Place(rng), Class: trace.ClassNode}
	}

	detMode, err := health.ParseMode(*detectorFlag)
	if err != nil {
		return err
	}

	tick := time.Second / time.Duration(*fpsFlag)
	cloud, err := live.StartCloud(live.CloudConfig{
		Addr:  "127.0.0.1:0",
		World: world.DefaultConfig(),
		Tick:  tick,
		Detector: health.DetectorConfig{
			Mode:     detMode,
			Interval: *heartbeatFlag,
		},
		// The cloud always offers direct streaming so a player whose whole
		// backup ring is down degrades to the cloud instead of going dark.
		DirectFPS: *fpsFlag,
		DelayFor: func(snID int64) time.Duration {
			for _, ep := range snEPs {
				if int64(ep.ID) == snID {
					return model.OneWay(dcEP, ep)
				}
			}
			return 0
		},
		Obs: reg,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()
	cloud.World(func(w *world.World) {
		for i := 0; i < 40; i++ {
			w.SpawnObject(world.Vec2{X: float64(i * 250 % 10000), Y: float64(i * 777 % 10000)})
		}
	})
	fmt.Printf("cloud on %s (tick %v)\n", cloud.Addr(), tick)

	// Supernodes live in a mutex-guarded map so chaos can kill and respawn
	// them mid-run; snAddrs pins each one's listen address so a respawn
	// comes back where the players' backup ring expects it.
	var snMu sync.Mutex
	snLive := make(map[int64]*live.Supernode, len(snEPs))
	snAddrs := make([]string, len(snEPs))
	heartbeatEvery := time.Duration(0)
	if detMode != health.ModeOracle {
		heartbeatEvery = *heartbeatFlag
	}
	snConfig := func(ep trace.Endpoint, addr string) live.SupernodeConfig {
		return live.SupernodeConfig{
			ID:             int64(ep.ID),
			CloudAddr:      cloud.Addr(),
			Addr:           addr,
			Transport:      *transportFlag,
			DelayToCloud:   model.OneWay(ep, dcEP),
			FPS:            *fpsFlag,
			HeartbeatEvery: heartbeatEvery,
			DelayFor: func(playerID int64) time.Duration {
				for _, pe := range playerEPs {
					if int64(pe.ID) == playerID {
						return model.OneWay(ep, pe)
					}
				}
				return 0
			},
			Obs: reg,
		}
	}
	for i, ep := range snEPs {
		sn, err := live.StartSupernode(snConfig(ep, "127.0.0.1:0"))
		if err != nil {
			return err
		}
		snLive[int64(ep.ID)] = sn
		snAddrs[i] = sn.Addr()
		fmt.Printf("supernode %d on %s (update hop %v)\n",
			ep.ID, sn.Addr(), model.OneWay(ep, dcEP).Round(time.Millisecond))
	}
	defer func() {
		snMu.Lock()
		defer snMu.Unlock()
		for _, sn := range snLive {
			sn.Close()
		}
	}()

	// Chaos: replay the fault profile in wall-clock time against the
	// running deployment.
	faultStats := obs.NewFaultStats()
	if reg != nil {
		faultStats = obs.FaultStatsIn(reg)
	}
	if *chaosFlag != "" {
		profile := defaultLiveChaos(*seedFlag, *durationFlag)
		if *chaosFlag != "default" {
			p, err := fault.Load(*chaosFlag)
			if err != nil {
				return err
			}
			profile = p
		}
		targets := fault.Targets{Supernodes: make([]fault.Node, len(snEPs))}
		for i, ep := range snEPs {
			targets.Supernodes[i] = fault.Node{ID: int64(ep.ID), X: ep.Pos.X, Y: ep.Pos.Y}
		}
		sched, err := fault.Compile(profile, targets)
		if err != nil {
			return err
		}
		hooks := fault.WallHooks{
			Kill: func(id int64) {
				snMu.Lock()
				sn := snLive[id]
				delete(snLive, id)
				snMu.Unlock()
				if sn != nil {
					fmt.Printf("chaos: killing supernode %d\n", id)
					sn.Close()
				}
			},
			Recover: func(id int64) {
				var addr string
				var ep trace.Endpoint
				for i, e := range snEPs {
					if int64(e.ID) == id {
						addr, ep = snAddrs[i], e
						break
					}
				}
				sn, err := live.StartSupernode(snConfig(ep, addr))
				if err != nil {
					fmt.Printf("chaos: supernode %d failed to respawn on %s: %v\n", id, addr, err)
					return
				}
				snMu.Lock()
				snLive[id] = sn
				snMu.Unlock()
				fmt.Printf("chaos: supernode %d respawned on %s\n", id, addr)
			},
			Link: func(extra time.Duration, lossFrac float64) {
				snMu.Lock()
				for _, sn := range snLive {
					sn.ImpairStreams(extra, lossFrac)
				}
				snMu.Unlock()
				fmt.Printf("chaos: link impairment extra=%v loss=%.0f%%\n", extra, lossFrac*100)
			},
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		chaosDone := make(chan struct{})
		go func() {
			defer close(chaosDone)
			fault.RunWall(ctx, sched, hooks, faultStats)
		}()
		defer func() { cancel(); <-chaosDone }()
		fmt.Printf("chaos profile %q armed: %d scheduled events over %v\n",
			profile.Name, len(sched.Events), profile.Duration.Duration)
	}

	fmt.Printf("\nrunning %d players for %v (stream transport %s)...\n\n",
		*playersFlag, *durationFlag, *transportFlag)
	var wg sync.WaitGroup
	reports := make([]live.PlayerReport, *playersFlag)
	errs := make([]error, *playersFlag)
	gameIDs := make([]int, *playersFlag)
	for i := 0; i < *playersFlag; i++ {
		// Each player streams from the supernode with the lowest total
		// serving-path latency — the assignment protocol's choice — and
		// records the next-best supernodes as its failover backup ring.
		order := make([]int, len(snEPs))
		for s := range order {
			order[s] = s
		}
		sort.Slice(order, func(a, b int) bool {
			ta := model.OneWay(playerEPs[i], snEPs[order[a]]) + model.OneWay(snEPs[order[a]], dcEP)
			tb := model.OneWay(playerEPs[i], snEPs[order[b]]) + model.OneWay(snEPs[order[b]], dcEP)
			return ta < tb
		})
		var backups []string
		for _, s := range order[1:] {
			if len(backups) == 2 {
				break
			}
			backups = append(backups, snAddrs[s])
		}
		gameIDs[i] = i%3 + 3 // games 3-5: budgets that a wide-area path can meet
		wg.Add(1)
		go func(i, snIdx int) {
			defer wg.Done()
			up := model.OneWay(playerEPs[i], dcEP)
			reports[i], errs[i] = live.RunPlayer(live.PlayerConfig{
				ID:              int64(playerEPs[i].ID),
				GameID:          gameIDs[i],
				CloudAddr:       cloud.Addr(),
				StreamAddr:      snAddrs[snIdx],
				BackupAddrs:     backups,
				Transport:       *transportFlag,
				ActionDelay:     up,
				ActionEvery:     200 * time.Millisecond,
				UploadAllowance: up,
				ViewRadius:      live.DefaultViewRadius,
				Obs:             reg,
			}, *durationFlag)
		}(i, order[0])
	}
	wg.Wait()

	// Report every player — including the failed ones — and exit non-zero
	// if any session did not complete, rather than aborting on the first
	// error and hiding the rest.
	var failed []error
	var videoBytes, failovers, cloudFallbacks int64
	for i, r := range reports {
		if r.CloudFallback {
			cloudFallbacks++
		}
		if errs[i] != nil {
			failed = append(failed, fmt.Errorf("player %d: %w", i+1, errs[i]))
			fmt.Printf("player %d FAILED: %v\n", i+1, errs[i])
			continue
		}
		g, _ := game.ByID(gameIDs[i])
		videoBytes += r.Bytes
		failovers += r.Failovers
		fmt.Printf("player %d (%-10s req %3dms): %3d segments, %6.1f KB video, response mean %v p95 %v, %3.0f%% within budget, %d failovers\n",
			i+1, g.Name, g.ResponseRequirement().Milliseconds(),
			r.Segments, float64(r.Bytes)/1000,
			r.MeanResponse.Round(time.Millisecond), r.P95Response.Round(time.Millisecond),
			r.WithinBudget*100, r.Failovers)
	}

	var updBytes int64
	snMu.Lock()
	for _, sn := range snLive {
		_, b := sn.UpdateTraffic()
		updBytes += b
	}
	snMu.Unlock()
	fmt.Printf("\nbandwidth ledger: cloud shipped %.1f KB of updates; supernodes shipped %.1f KB of video (%.1fx reduction)\n",
		float64(updBytes)/1000, float64(videoBytes)/1000, float64(videoBytes)/float64(updBytes+1))
	if *chaosFlag != "" {
		fmt.Printf("chaos ledger: %d kills, %d recoveries, %d link windows, %d player failovers (%d to the cloud)\n",
			faultStats.Kills.Load(), faultStats.Recoveries.Load(),
			faultStats.LinkWindows.Load(), failovers, cloudFallbacks)
	}
	if detMode != health.ModeOracle {
		detections, falsePos := cloud.FailureDetections()
		fmt.Printf("detector ledger (%s, heartbeat %v): %d heartbeats received, %d failures detected, %d false positives, down now: %v\n",
			detMode, *heartbeatFlag, cloud.HeartbeatsReceived(), detections,
			falsePos, cloud.DetectedFailures())
	}

	if len(failed) > 0 {
		return fmt.Errorf("%d of %d players failed: %w", len(failed), *playersFlag, errors.Join(failed...))
	}
	return nil
}
