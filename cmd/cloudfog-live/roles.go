package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudfog/internal/coord"
	"cloudfog/internal/live"
	"cloudfog/internal/obs"
)

// roleUsage is the per-subcommand usage text, keyed by role.
var roleUsage = map[live.RoleKind]string{
	live.RoleCloud: `cloudfog-live cloud -config <json>

Runs the cloud server: the authoritative world, the supernode update
stream, heartbeat failure detection, and the direct-stream fallback.
Config fields: addr (listen), tick, direct_fps, world, detector.
Runs until SIGINT/SIGTERM.`,
	live.RoleSupernode: `cloudfog-live supernode -config <json>

Runs a fog supernode: subscribes to the cloud's update stream and serves
rendered segments to players on addr over tcp or udp. With coord_addr set
it runs as a coordinator-registered worker instead: it announces itself
(position x/y, capacity) and streams occupancy reports every report_every.
Config fields: id, addr, cloud_addr, fps, transport, heartbeat_every
[, coord_addr, x, y, capacity, report_every, drain_timeout,
skew_tolerance]. Runs until SIGINT (abrupt) or SIGTERM (worker mode drains
every session onto other workers before exiting).`,
	live.RolePlayer: `cloudfog-live player -config <json> [-duration 4s]

Runs one player session: actions to the cloud, a rendered stream from a
supernode, response latency measured end to end. With coord_addr set the
player asks the coordinator for a placement ticket (verified under
ticket_key) instead of using stream_addr. Prints the session report as
JSON on exit.
Config fields: id, game_id, cloud_addr, action_every, view_radius and
either stream_addr [, backup_addrs, transport] or coord_addr [, x, y,
ticket_key].`,
}

// runRole is the subcommand entry: parse the role's flags, load the
// serializable live.Config, and run the role until it finishes or a signal
// arrives.
func runRole(role live.RoleKind, args []string) error {
	if role == live.RoleCoordinator {
		return fmt.Errorf("the coordinator runs as its own binary: cloudfog-coordinator")
	}
	fs := flag.NewFlagSet("cloudfog-live "+string(role), flag.ExitOnError)
	configPath := fs.String("config", "", "role config JSON path (\"-\" reads stdin)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus text metrics on this address")
	duration := fs.Duration("duration", 4*time.Second, "player session length (player role only)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, roleUsage[role])
		fmt.Fprintln(os.Stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := loadConfig(*configPath, role)
	if err != nil {
		return err
	}
	var opts []live.Option
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		addr, err := startMetrics(*metricsAddr, reg)
		if err != nil {
			return err
		}
		fmt.Printf("metrics on http://%s/metrics\n", addr)
		opts = append(opts, live.WithObs(reg))
	}
	switch role {
	case live.RoleCloud:
		cloud, err := live.NewCloud(cfg, opts...)
		if err != nil {
			return err
		}
		defer cloud.Close()
		fmt.Printf("cloud on %s\n", cloud.Addr())
		waitSignal()
		return nil
	case live.RoleSupernode:
		if cfg.CoordAddr != "" {
			w, err := coord.StartWorker(cfg, opts...)
			if err != nil {
				return err
			}
			defer w.Close()
			fmt.Printf("worker %d on %s (coordinator %s)\n", w.ID(), w.Addr(), cfg.CoordAddr)
			// SIGTERM is the graceful path: announce a drain so the
			// coordinator hands every session off make-before-break, and
			// only exit once the supernode is empty (or drain_timeout
			// lapses). SIGINT remains the abrupt kill.
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			if sig := <-ch; sig == syscall.SIGTERM {
				fmt.Printf("worker %d: SIGTERM, draining sessions\n", w.ID())
				if w.Drain() {
					fmt.Printf("worker %d: drained, every session handed off\n", w.ID())
				} else {
					fmt.Printf("worker %d: drain timeout, exiting with sessions attached\n", w.ID())
				}
			}
			return nil
		}
		sn, err := live.NewSupernode(cfg, opts...)
		if err != nil {
			return err
		}
		defer sn.Close()
		fmt.Printf("supernode %d on %s\n", cfg.ID, sn.Addr())
		waitSignal()
		return nil
	case live.RolePlayer:
		return runPlayerRole(cfg, *duration, opts)
	}
	return fmt.Errorf("unhandled role %q", role)
}

func runPlayerRole(cfg live.Config, duration time.Duration, opts []live.Option) error {
	var (
		rep live.PlayerReport
		err error
	)
	if cfg.CoordAddr != "" {
		rep, _, err = coord.RunSession(signalContext(), cfg, duration, opts...)
	} else {
		cfg, err = live.DefaultedPlayer(cfg)
		if err != nil {
			return err
		}
		var p *live.Player
		if p, err = live.NewPlayer(cfg, opts...); err == nil {
			rep, err = p.Run(duration)
		}
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// loadConfig reads and validates a role-tagged live.Config. An untagged
// config inherits the subcommand's role; a mismatched tag is an error.
func loadConfig(path string, role live.RoleKind) (live.Config, error) {
	var cfg live.Config
	if path == "" {
		return cfg, fmt.Errorf("-config is required (JSON path, or \"-\" for stdin)")
	}
	var (
		blob []byte
		err  error
	)
	if path == "-" {
		blob, err = io.ReadAll(os.Stdin)
	} else {
		blob, err = os.ReadFile(path)
	}
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(blob, &cfg); err != nil {
		return cfg, fmt.Errorf("config %s: %w", path, err)
	}
	if cfg.Role == "" {
		cfg.Role = role
	}
	if cfg.Role != role {
		return cfg, fmt.Errorf("config role %q does not match subcommand %q", cfg.Role, role)
	}
	if role == live.RolePlayer {
		// Fill player defaults (action cadence, view radius) before the
		// strict validation pass so minimal configs work from the CLI.
		if cfg, err = live.DefaultedPlayer(cfg); err != nil {
			return cfg, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func waitSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// signalContext returns a context cancelled by SIGINT/SIGTERM.
func signalContext() context.Context {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	_ = cancel // released on process exit
	return ctx
}
